"""reprosan — the determinism sanitizer's shadow trace.

Every scaling result in this reproduction rests on byte-identical
equivalence invariants (shard-vs-serial campaigns, wave-vs-scalar
admission, kill-9 resume convergence), but an end-of-run digest
mismatch says *that* determinism broke, never *where*.  The sanitizer
works the way TSan/MSan instrument a binary: hooks over the
determinism surface — every named RNG stream draw, ``SimClock`` read,
limiter saturation transition, journal frame append, and shard
fork/merge point — feed a shadow trace that two runs can diff down to
the first divergent event (``repro san diff A B``).

Memory is bounded the way a profiler bounds itself, not the way a
logger doesn't:

* Per ``(stream, day)`` **epoch digests** — a rolling blake2b chain
  over the stream's length-prefixed event payloads, folded and sealed
  when the stream's day changes.  The chain is cumulative *across*
  days, so a divergence on day ``d`` poisons every later epoch and a
  binary search over epochs finds the first bad day.
* **Intra-day samples** — ``(seq, chain-digest)`` checkpoints every
  ``stride`` events; the stride starts at 1 and doubles (thinning the
  kept samples) whenever a day exceeds ``MAX_SAMPLES``, so tiny runs
  bisect to the exact sequence number while huge days stay bounded.
* A **ring buffer** of the last ``RING_SIZE`` raw events per stream
  (method + call-site), so the differ can *name* the first divergent
  event when it falls inside the retained window.

The identity contract — a sanitized run is byte-identical to an
unsanitized one — holds because every hook observes and never draws,
never reads the wall clock, and never perturbs the object it watches;
``tests/test_sanitizer.py`` pins the request-log digest with the
plane on and off.

Fold points (where the pending byte buffer is hashed into the chain)
are a deterministic function of the per-stream event count alone —
sample positions, day seals, and export — so equal event prefixes
always produce equal digests regardless of when a run was
checkpointed, forked, or exported.
"""

from __future__ import annotations

import hashlib
from collections import deque
from typing import Any, Dict, Iterable, List, Optional, Tuple

#: Simulation seconds per day (mirrors repro.sim.clock.DAY; duplicated
#: here so the trace plane stays import-light for the sim layer).
_DAY = 86400

#: Digest width for epoch/sample chains (16 bytes = blake2b-128).
DIGEST_SIZE = 16

#: Intra-day sample checkpoints kept per (stream, day) before the
#: sampling stride doubles.
MAX_SAMPLES = 512

#: Raw events retained per stream for exact divergence naming.
RING_SIZE = 256

#: Reserved (non-RNG) stream names.  RNG streams are namespaced with
#: an ``rng:`` prefix so a factory stream can never collide with them.
CLOCK_STREAM = "clock"
LIMITER_STREAM = "limiter"
JOURNAL_STREAM = "journal"
SHARD_STREAM = "shard"


def _peek(chain: bytes, pending: bytearray) -> bytes:
    """The chain digest as if ``pending`` were folded — read-only."""
    if not pending:
        return chain
    digest = hashlib.blake2b(chain, digest_size=DIGEST_SIZE)
    digest.update(pending)
    return digest.digest()


def _fold(chain: bytes, pending: bytearray) -> bytes:
    """Fold buffered payload bytes into the rolling chain digest.

    Fold points alter later chain values, so they must line up across
    compared runs: sample positions and day seals are functions of the
    per-stream event count alone, and checkpoint export (the only
    other fold) happens at day boundaries, where the buffered bytes
    are exactly what the next day seal would fold anyway.
    """
    if not pending:
        return chain
    digest = hashlib.blake2b(chain, digest_size=DIGEST_SIZE)
    digest.update(pending)
    del pending[:]
    return digest.digest()


class _StreamState:
    """Mutable per-stream trace state (picklable; see export_state)."""

    __slots__ = ("day", "seq", "total", "chain", "pending", "epochs",
                 "samples", "stride", "ring")

    def __init__(self) -> None:
        self.day: Optional[int] = None
        self.seq = 0                    # events recorded this day
        self.total = 0                  # events recorded overall
        self.chain = b"reprosan-v1\x00\x00\x00\x00\x00"  # 16-byte genesis
        self.pending = bytearray()
        #: sealed days: [(day, event_count, cumulative_digest_hex), ...]
        self.epochs: List[Tuple[int, int, str]] = []
        #: per-day checkpoints: day -> [(seq, cumulative_digest_hex)];
        #: capped at MAX_SAMPLES per day by stride doubling, so memory
        #: grows with days (like epochs), never with events.
        self.samples: Dict[int, List[Tuple[int, str]]] = {}
        self.stride = 1                 # current day's sampling stride
        #: last RING_SIZE raw events: (day, seq, method, site)
        self.ring: deque = deque(maxlen=RING_SIZE)


class SanitizerTrace:  # reprolint: disable=RL401 — enabled is session wiring set before the world builds; _capture lives only inside one sharded day, and checkpoints export at day boundaries where both are at rest
    """The process-global shadow-trace recorder (``SANITIZER``).

    Disabled by default; when disabled every hook is a single
    attribute check.  ``repro run --sanitize DIR`` enables it before
    the world is built and writes the manifest after the study.
    """

    def __init__(self) -> None:
        self.enabled = False
        self._streams: Dict[str, _StreamState] = {}
        self._day = 0
        self._last_clock: Optional[int] = None
        #: When not None, hooks append replayable events here instead
        #: of advancing stream states — the shard capture mode (see
        #: repro.countermeasures.sharding).
        self._capture: Optional[List[tuple]] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop all recorded state (the enabled flag is preserved)."""
        self._streams = {}
        self._day = 0
        self._last_clock = None
        self._capture = None

    # ------------------------------------------------------------------
    # Day tracking
    # ------------------------------------------------------------------
    def note_time(self, now: int) -> None:
        """Clock advancement hook: keeps the current epoch day."""
        self._day = now // _DAY

    def set_day(self, day: int) -> None:
        """Pin the epoch day explicitly (shard children rewind the
        clock by direct assignment, bypassing ``advance_to``)."""
        self._day = day

    # ------------------------------------------------------------------
    # Recording hooks
    # ------------------------------------------------------------------
    def record_draw(self, stream: str, payload: bytes, method: str,
                    frame: Any) -> None:
        """One RNG draw on a named factory stream."""
        site = (frame.f_code.co_filename, frame.f_lineno)
        self._record("rng:" + stream, self._day, payload, method, site)

    def record_clock(self, now: int) -> None:
        """One ``SimClock.now()`` read, deduplicated by value.

        In capture mode every read is captured and deduplication is
        deferred to :meth:`replay`, where the global ``(when, seq)``
        interleaving — not this process's local read order — decides
        which reads are adjacent.  Deduplicating here against the
        fork-inherited ``_last_clock`` could drop a read the serial
        interleaving keeps.
        """
        capture = self._capture
        if capture is not None:
            capture.append((CLOCK_STREAM, now // _DAY, b"c%d" % now,
                            "now=%d" % now, None))
            return
        if now == self._last_clock:
            return
        self._last_clock = now
        self._apply(CLOCK_STREAM, now // _DAY, b"c%d" % now,
                    "now=%d" % now, None)

    def record_limiter(self, kind: str, key_digest: str) -> None:
        """One limiter saturation transition (``kind`` names the
        site: ``saturate``, ``exhaust``, ...; keys are redacted)."""
        self._record(LIMITER_STREAM, self._day,
                     b"L" + kind.encode() + key_digest.encode(),
                     kind + " " + key_digest, None)

    def record_journal(self, day: int, tag: str, digest: bytes) -> None:
        """One WAL frame append, identified by its chain digest."""
        self._record(JOURNAL_STREAM, day, b"J" + tag.encode() + digest,
                     "frame " + tag + " " + digest.hex(), None)

    def record_shard(self, label: str) -> None:
        """One shard fork/merge point (execution-strategy stream;
        excluded from cross-mode comparisons like telemetry's
        ``shard_`` family)."""
        self._record(SHARD_STREAM, self._day, b"S" + label.encode(),
                     label, None)

    # ------------------------------------------------------------------
    # The record core
    # ------------------------------------------------------------------
    def _record(self, stream: str, day: int, payload: bytes,
                method: str, site) -> None:
        capture = self._capture
        if capture is not None:
            capture.append((stream, day, payload, method, site))
            return
        self._apply(stream, day, payload, method, site)

    def _apply(self, stream: str, day: int, payload: bytes,
               method: str, site) -> None:
        state = self._streams.get(stream)
        if state is None:
            state = self._streams[stream] = _StreamState()
        if day != state.day:
            if state.day is not None:
                state.chain = _fold(state.chain, state.pending)
                state.epochs.append((state.day, state.seq,
                                     state.chain.hex()))
            state.day = day
            state.seq = 0
            state.stride = 1
        pending = state.pending
        pending.append(len(payload))
        pending += payload
        seq = state.seq
        state.ring.append((day, seq, method, site))
        state.seq = seq + 1
        state.total += 1
        if state.seq % state.stride == 0:
            state.chain = _fold(state.chain, pending)
            samples = state.samples.setdefault(day, [])
            samples.append((seq, state.chain.hex()))
            if len(samples) > MAX_SAMPLES:
                # Thin to every other checkpoint and double the stride:
                # kept positions stay congruent to stride-1 mod stride,
                # so two traces with equal prefixes keep comparable
                # seqs no matter when each thinned.
                del samples[::2]
                state.stride *= 2

    # ------------------------------------------------------------------
    # Shard capture (see repro.countermeasures.sharding)
    # ------------------------------------------------------------------
    def begin_capture(self) -> int:
        """Switch hooks to append-only capture; returns the mark."""
        if self._capture is None:
            self._capture = []
        return len(self._capture)

    def capture_mark(self) -> int:
        capture = self._capture
        return 0 if capture is None else len(capture)

    def capture_slice(self, lo: int, hi: int) -> Tuple[tuple, ...]:
        capture = self._capture
        if capture is None:
            return ()
        return tuple(capture[lo:hi])

    def end_capture(self) -> None:
        """Leave capture mode, discarding the raw capture list (the
        caller replays the per-event slices it kept, globally sorted)."""
        self._capture = None

    def replay(self, events: Iterable[tuple]) -> None:
        """Apply captured events to this trace as if recorded live.

        Clock reads are deduplicated here, at replay time, against
        this process's last-seen value — matching what a serial run
        would have recorded in the same global order.
        """
        for stream, day, payload, method, site in events:
            if stream == CLOCK_STREAM:
                now = int(method[4:])
                if now == self._last_clock:
                    continue
                self._last_clock = now
            self._apply(stream, day, payload, method, site)

    # ------------------------------------------------------------------
    # State transfer (checkpoints; resume convergence)
    # ------------------------------------------------------------------
    def export_state(self) -> dict:
        """Full picklable snapshot (pending bytes folded first, which
        is digest-neutral: fold points depend only on event counts)."""
        streams = {}
        for name, state in self._streams.items():
            state.chain = _fold(state.chain, state.pending)
            streams[name] = {
                "day": state.day,
                "seq": state.seq,
                "total": state.total,
                "chain": state.chain,
                "epochs": list(state.epochs),
                "samples": {day: list(entries)
                            for day, entries in state.samples.items()},
                "stride": state.stride,
                "ring": list(state.ring),
            }
        return {"streams": streams, "day": self._day,
                "last_clock": self._last_clock}

    def install_state(self, snapshot: dict) -> None:
        """Restore an :meth:`export_state` snapshot wholesale."""
        self._streams = {}
        for name, data in snapshot["streams"].items():
            state = _StreamState()
            state.day = data["day"]
            state.seq = data["seq"]
            state.total = data["total"]
            state.chain = data["chain"]
            state.pending = bytearray()
            state.epochs = list(data["epochs"])
            state.samples = {day: list(entries)
                             for day, entries in data["samples"].items()}
            state.stride = data["stride"]
            state.ring = deque(data["ring"], maxlen=RING_SIZE)
            self._streams[name] = state
        self._day = snapshot["day"]
        self._last_clock = snapshot["last_clock"]

    # ------------------------------------------------------------------
    # Introspection / manifest
    # ------------------------------------------------------------------
    def stream_names(self) -> List[str]:
        return sorted(self._streams)

    def event_total(self) -> int:
        return sum(state.total for state in self._streams.values())

    def fingerprint(self, exclude_prefixes: Tuple[str, ...] = ()) -> str:
        """8-hex-char digest over per-stream totals and chains."""
        digest = hashlib.blake2b(digest_size=4)
        for name in sorted(self._streams):
            if exclude_prefixes and name.startswith(exclude_prefixes):
                continue
            state = self._streams[name]
            digest.update(f"{name}|{state.total}|".encode())
            digest.update(_peek(state.chain, state.pending))
        return digest.hexdigest()

    def manifest(self) -> dict:
        """The comparable trace document (``sanitizer.json``).

        Epoch lists include the still-open day as a final entry so two
        completed runs compare uniformly; ring call-sites are
        normalised to repo-relative paths.
        """
        streams = {}
        for name in sorted(self._streams):
            state = self._streams[name]
            chain = _peek(state.chain, state.pending)
            epochs = [list(epoch) for epoch in state.epochs]
            if state.day is not None:
                epochs.append([state.day, state.seq, chain.hex()])
            streams[name] = {
                "total": state.total,
                "epochs": epochs,
                "open_day": state.day,
                "samples": {str(day): [list(sample) for sample in entries]
                            for day, entries in
                            sorted(state.samples.items())},
                "ring": [[day, seq, method, _site_str(site)]
                         for day, seq, method, site in state.ring],
            }
        return {"format": "reprosan-trace", "version": 1,
                "events": self.event_total(), "streams": streams}


def _site_str(site) -> str:
    """Repo-relative ``path:lineno`` for a recorded call-site."""
    if site is None:
        return ""
    filename, lineno = site
    filename = filename.replace("\\", "/")
    marker = "/src/repro/"
    index = filename.rfind(marker)
    if index >= 0:
        filename = "repro/" + filename[index + len(marker):]
    else:
        parts = filename.rsplit("/", 2)
        filename = "/".join(parts[-2:])
    return f"{filename}:{lineno}"


#: The process-global sanitizer, mirroring ``TELEMETRY``'s shape.
SANITIZER = SanitizerTrace()
