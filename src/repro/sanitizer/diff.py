"""Trace manifest comparison — ``repro san diff A B``.

Given two ``sanitizer.json`` manifests (run-vs-run, shard-vs-serial,
resume-vs-uninterrupted), the differ works outside-in:

1. **Streams** — a stream present in only one trace is itself the
   divergence.
2. **Epochs** — per stream, the per-day ``(day, count, cumulative
   digest)`` ledger is scanned for the first mismatching entry.
   Chains are cumulative across days, so every epoch after the first
   bad one is poisoned and the first mismatch *is* the first bad day.
3. **Samples** — within the bad day, the intra-day ``(seq, digest)``
   checkpoints shared by both traces bracket the first divergent
   event; at stride 1 (every run below ``MAX_SAMPLES`` events per
   stream-day) the bracket collapses to the exact sequence number.
4. **Ring** — when the divergent seq falls inside the retained
   raw-event window, the event is named: method and call-site on each
   side.

Cross-execution-mode comparisons must ignore the streams that
describe the execution strategy rather than the workload: shard
fork/merge markers (``shard``) always, and clock reads (``clock``)
when comparing a sharded against a serial run (the pre-pass and child
replay legitimately read the clock in a different pattern).  That is
what ``--ignore`` is for; run-vs-run comparisons of the same mode
ignore nothing.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


def load_manifest(path: str) -> dict:
    """Load a manifest from a file, or a ``--sanitize`` directory."""
    if os.path.isdir(path):
        path = os.path.join(path, "sanitizer.json")
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if document.get("format") != "reprosan-trace":
        raise ValueError(f"{path} is not a reprosan trace manifest")
    return document


@dataclass(frozen=True)
class Divergence:
    """One localized difference between two traces."""

    stream: str
    kind: str                  # missing-stream | event | interval
    day: Optional[int] = None
    seq: Optional[int] = None          # exact first divergent seq
    seq_lo: Optional[int] = None       # else: bracket (seq_lo, seq_hi]
    seq_hi: Optional[int] = None
    detail_a: str = ""
    detail_b: str = ""

    def render(self) -> str:
        if self.kind == "missing-stream":
            return (f"divergence: stream={self.stream} "
                    f"({self.detail_a or 'absent in a'}; "
                    f"{self.detail_b or 'absent in b'})")
        lines: List[str] = []
        if self.seq is not None:
            lines.append(f"divergence: stream={self.stream} "
                         f"day={self.day} seq={self.seq}")
        else:
            lines.append(f"divergence: stream={self.stream} "
                         f"day={self.day} seq in "
                         f"({self.seq_lo}, {self.seq_hi}] "
                         "(sampled resolution)")
        if self.detail_a:
            lines.append(f"  a: {self.detail_a}")
        if self.detail_b:
            lines.append(f"  b: {self.detail_b}")
        return "\n".join(lines)


@dataclass
class DiffResult:
    equal: bool
    streams_compared: int
    events_a: int
    events_b: int
    ignored: Tuple[str, ...] = ()
    divergences: List[Divergence] = field(default_factory=list)

    def render(self) -> str:
        if self.equal:
            ignored = (f" (ignored prefixes: {', '.join(self.ignored)})"
                       if self.ignored else "")
            return (f"sanitizer traces identical: "
                    f"{self.streams_compared} stream(s), "
                    f"{self.events_a} event(s){ignored}")
        header = (f"sanitizer traces diverge: "
                  f"{len(self.divergences)} stream(s) affected "
                  f"({self.events_a} vs {self.events_b} events)")
        return "\n".join([header]
                         + [d.render() for d in self.divergences])


def _epoch_ledger(stream: dict) -> List[Tuple[int, int, str]]:
    return [(int(day), int(count), digest)
            for day, count, digest in stream.get("epochs", [])]


def _samples_of(stream: dict, day: int) -> Dict[int, str]:
    entries = stream.get("samples", {}).get(str(day), [])
    return {int(seq): digest for seq, digest in entries}


def _ring_event(stream: dict, day: int, seq: int) -> Optional[str]:
    for entry_day, entry_seq, method, site in stream.get("ring", []):
        if entry_day == day and entry_seq == seq:
            return f"{method} @ {site}" if site else method
    return None


def _day_count(ledger: List[Tuple[int, int, str]], day: int) -> int:
    for entry_day, count, _digest in ledger:
        if entry_day == day:
            return count
    return 0


def _localize(stream: str, a: dict, b: dict, day: int) -> Divergence:
    """Pin the first divergent event within a known-bad day."""
    count_a = _day_count(_epoch_ledger(a), day)
    count_b = _day_count(_epoch_ledger(b), day)
    samples_a = _samples_of(a, day)
    samples_b = _samples_of(b, day)
    common = sorted(set(samples_a) & set(samples_b))
    lo = -1
    hi: Optional[int] = None
    for seq in common:
        if samples_a[seq] == samples_b[seq]:
            lo = seq
        else:
            hi = seq
            break
    if hi is None:
        # Every shared checkpoint agrees: the divergence is past the
        # last common sample.  When the counts differ, the first event
        # one trace has and the other lacks bounds it; when they agree
        # (same count, different bytes), the last event does.
        if count_a != count_b:
            hi = min(count_a, count_b)
        else:
            hi = count_a - 1
    # The bracket (lo, hi] collapses to an exact event when it holds
    # exactly one candidate — always true at sampling stride 1.
    seq: Optional[int] = hi if hi - lo == 1 else None
    detail_a = detail_b = ""
    probe = seq if seq is not None else hi
    if probe is not None:
        event_a = _ring_event(a, day, probe)
        event_b = _ring_event(b, day, probe)
        if event_a:
            detail_a = f"{event_a} ({count_a} events this day)"
        if event_b:
            detail_b = f"{event_b} ({count_b} events this day)"
    if not detail_a:
        detail_a = f"{count_a} events this day"
    if not detail_b:
        detail_b = f"{count_b} events this day"
    if seq is not None:
        return Divergence(stream=stream, kind="event", day=day, seq=seq,
                          detail_a=detail_a, detail_b=detail_b)
    return Divergence(stream=stream, kind="interval", day=day,
                      seq_lo=lo, seq_hi=hi,
                      detail_a=detail_a, detail_b=detail_b)


def _diff_stream(stream: str, a: dict, b: dict) -> Optional[Divergence]:
    ledger_a = _epoch_ledger(a)
    ledger_b = _epoch_ledger(b)
    for entry_a, entry_b in zip(ledger_a, ledger_b):
        if entry_a == entry_b:
            continue
        day_a, _count_a, _ = entry_a
        day_b, _count_b, _ = entry_b
        if day_a == day_b:
            return _localize(stream, a, b, day_a)
        # Different days at the same ledger position: one trace has an
        # epoch (hence events) on a day the other skipped entirely —
        # the first event of the earlier day is the divergence.
        day = min(day_a, day_b)
        return _localize(stream, a, b, day)
    if len(ledger_a) != len(ledger_b):
        longer = ledger_a if len(ledger_a) > len(ledger_b) else ledger_b
        day = longer[min(len(ledger_a), len(ledger_b))][0]
        return _localize(stream, a, b, day)
    return None


def diff_manifests(manifest_a: dict, manifest_b: dict,
                   ignore: Tuple[str, ...] = ()) -> DiffResult:
    """Compare two trace manifests; streams matching an ``ignore``
    prefix are excluded from the comparison."""
    streams_a = manifest_a.get("streams", {})
    streams_b = manifest_b.get("streams", {})

    def kept(name: str) -> bool:
        return not (ignore and name.startswith(tuple(ignore)))

    names = sorted(set(streams_a) | set(streams_b))
    divergences: List[Divergence] = []
    compared = 0
    for name in names:
        if not kept(name):
            continue
        compared += 1
        in_a = name in streams_a
        in_b = name in streams_b
        if not (in_a and in_b):
            present = streams_a.get(name) or streams_b.get(name)
            total = present.get("total", 0) if present else 0
            divergences.append(Divergence(
                stream=name, kind="missing-stream",
                detail_a=(f"{total} events" if in_a else "absent"),
                detail_b=(f"{total} events" if in_b else "absent")))
            continue
        found = _diff_stream(name, streams_a[name], streams_b[name])
        if found is not None:
            divergences.append(found)
    events = [sum(streams.get(name, {}).get("total", 0)
                  for name in names if kept(name))
              for streams in (streams_a, streams_b)]
    return DiffResult(equal=not divergences, streams_compared=compared,
                      events_a=events[0], events_b=events[1],
                      ignored=tuple(ignore), divergences=divergences)
