"""reprosan — determinism sanitizer with divergence bisection.

Public surface:

* :data:`SANITIZER` — the process-global shadow-trace recorder
  (enable with ``repro run --sanitize DIR``).
* :class:`InstrumentedStream` — the RNG draw hook handed out by
  ``RngFactory.stream`` while sanitizing.
* :class:`SanitizerDelta` / :func:`capture_delta` /
  :func:`delta_pieces` / :func:`merge_pieces` — shard transfer.
* :func:`diff_manifests` / :func:`load_manifest` — the
  ``repro san diff`` engine.
* :func:`write_sanitizer` — manifest export.
"""

from __future__ import annotations

import json
import os

from repro.sanitizer.delta import (
    SanitizerDelta,
    capture_delta,
    delta_pieces,
    merge_pieces,
)
from repro.sanitizer.diff import (
    DiffResult,
    Divergence,
    diff_manifests,
    load_manifest,
)
from repro.sanitizer.streams import InstrumentedStream, hot_draw_bindings
from repro.sanitizer.trace import SANITIZER, SanitizerTrace

__all__ = [
    "SANITIZER",
    "SanitizerTrace",
    "InstrumentedStream",
    "hot_draw_bindings",
    "SanitizerDelta",
    "capture_delta",
    "delta_pieces",
    "merge_pieces",
    "DiffResult",
    "Divergence",
    "diff_manifests",
    "load_manifest",
    "write_sanitizer",
]


def write_sanitizer(directory: str,
                    trace: SanitizerTrace = SANITIZER) -> str:
    """Write the trace manifest to ``directory/sanitizer.json``."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, "sanitizer.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace.manifest(), handle, indent=1, sort_keys=True)
        handle.write("\n")
    return path
