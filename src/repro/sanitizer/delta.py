"""Shard transfer of sanitizer trace events.

During a sharded campaign day the determinism-relevant events happen
in three places: the parent's pre-pass (honeypot posts, pinned in
global ``(when, seq)`` order), the forked children (delivery and
upkeep for their certified component), and the parent again at merge
time (journal frames).  Per-stream chains must come out equal to the
serial day's, so — exactly like the request-log rows — captured
events are sliced per :class:`~repro.countermeasures.sharding.DayEvent`
and the parent replays every slice globally sorted by ``(when, seq)``.

While capture mode is active (``SANITIZER.begin_capture()``), hooks
append replayable tuples instead of advancing stream states; a child
ships its slice table beside ``ShardDayDelta``/``TelemetryDelta`` as
a :class:`SanitizerDelta`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.sanitizer.trace import SanitizerTrace


@dataclass(frozen=True)
class SanitizerDelta:
    """Captured trace events for one shard component (or the pre-pass).

    ``events`` holds the replayable tuples in recording order;
    ``segments`` maps each executed day event to its slice:
    ``(seq, when, lo, hi)`` — identical in shape to the row segments
    on ``ShardDayDelta``.
    """

    events: Tuple[tuple, ...]
    segments: Tuple[Tuple[int, int, int, int], ...]


def capture_delta(trace: SanitizerTrace, base: int,
                  segments: List[Tuple[int, int, int, int]]
                  ) -> Optional[SanitizerDelta]:
    """Build the delta for events captured since ``base``.

    ``segments`` carries absolute capture indices; they are rebased so
    the delta is self-contained.  Returns None when the sanitizer is
    disabled (nothing was captured).
    """
    if not trace.enabled:
        return None
    events = trace.capture_slice(base, trace.capture_mark())
    rebased = tuple((seq, when, lo - base, hi - base)
                    for seq, when, lo, hi in segments)
    return SanitizerDelta(events=events, segments=rebased)


def delta_pieces(delta: Optional[SanitizerDelta]
                 ) -> Iterable[Tuple[int, int, Tuple[tuple, ...]]]:
    """Yield ``(when, seq, events)`` replay pieces from a delta."""
    if delta is None:
        return
    events = delta.events
    for seq, when, lo, hi in delta.segments:
        yield (when, seq, events[lo:hi])


def merge_pieces(trace: SanitizerTrace,
                 pieces: List[Tuple[int, int, Tuple[tuple, ...]]]) -> None:
    """Replay capture pieces in global ``(when, seq)`` order.

    Per-stream chains are invariant to cross-stream interleaving, so
    replaying the same per-event slices a serial day would have
    executed — in the serial day's order — reproduces its trace
    exactly.
    """
    if not trace.enabled:
        return
    for _when, _seq, events in sorted(pieces, key=lambda p: (p[0], p[1])):
        trace.replay(events)
