"""Instrumented RNG streams — the sanitizer's draw hooks.

``RngFactory.stream`` hands out an :class:`InstrumentedStream` in
place of the raw ``random.Random`` while the sanitizer is enabled.
The wrapper delegates every method to the *same* underlying generator
(the factory keeps the raw object; checkpoints and state transfer
operate on it directly), records one shadow-trace event per draw —
stream name, method, call-site, day, sequence — and records nothing
for ``getstate``/``setstate`` (state plumbing is not a draw).

The wrapper must survive the same journeys the raw generator makes:
``CollusionNetwork.export_state`` pickles ``self.rng`` across the
shard fork boundary and ``adopt_state`` swaps the unpickled stream
back in, rebinding bound-method caches (``self.rng.random``); the
wrapper therefore pickles by value (stream name + underlying
generator) and rebinds the process-global ``SANITIZER`` on the far
side, so an adopted stream keeps recording in its new process.
"""

from __future__ import annotations

import sys
from random import Random

from repro.sanitizer.trace import SANITIZER

def _rebuild(name: str, raw: Random) -> "InstrumentedStream":
    """Unpickle hook: rebind the new process's global sanitizer."""
    return InstrumentedStream(raw, name)


def hot_draw_bindings(stream):
    """``(random, getrandbits)`` bound methods for an inlined hot loop.

    The fused admission path caches bound draw methods and calls them
    millions of times per simulated day; a per-draw shadow-trace event
    there costs multiples of the stage's wall clock (reprosan's budget
    is <10% of campaign-stage time — see ``tools/bench_report.py
    --sanitize``).  These bindings resolve to the *raw* generator, so
    the draws stay byte-identical and completely unhooked.

    The exemption is structural — a fixed property of the two inlined
    call sites, identical in every run and execution mode — so it is
    deliberately not recorded as a trace event (a per-bind marker
    would differ between serial runs and shard adopt/merge rebinding
    without describing any workload divergence).  A divergent draw
    inside the exempt loop still surfaces in the same day's trace
    through everything the loop feeds: the members/campaign streams,
    limiter saturation transitions, and journal frame digests.
    """
    if isinstance(stream, InstrumentedStream):
        raw = stream._raw
        return raw.random, raw.getrandbits
    return stream.random, stream.getrandbits


class InstrumentedStream:
    """Observation-only proxy around one named ``random.Random``.

    Draw methods are explicit delegations (so each records exactly one
    event with the caller's frame); everything else falls through
    ``__getattr__`` unrecorded.
    """

    __slots__ = ("_raw", "_name", "_san")

    def __init__(self, raw: Random, name: str) -> None:
        self._raw = raw
        self._name = name
        self._san = SANITIZER

    # -- pickling (shard transfer, checkpoints) ------------------------
    def __reduce__(self):
        return (_rebuild, (self._name, self._raw))

    # -- state plumbing: delegated, never recorded ---------------------
    def getstate(self):
        return self._raw.getstate()

    def setstate(self, state) -> None:
        self._raw.setstate(state)

    def seed(self, *args, **kwargs) -> None:
        self._raw.seed(*args, **kwargs)

    def __getattr__(self, attr):
        return getattr(self._raw, attr)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"InstrumentedStream({self._name!r})"

    # -- recorded draws ------------------------------------------------
    def random(self):
        san = self._san
        if san.enabled:
            san.record_draw(self._name, b"r", "random", sys._getframe(1))
        return self._raw.random()

    def getrandbits(self, k):
        san = self._san
        if san.enabled:
            san.record_draw(self._name, b"g", "getrandbits",
                            sys._getframe(1))
        return self._raw.getrandbits(k)

    def randrange(self, *args):
        san = self._san
        if san.enabled:
            san.record_draw(self._name, b"R", "randrange",
                            sys._getframe(1))
        return self._raw.randrange(*args)

    def randint(self, a, b):
        san = self._san
        if san.enabled:
            san.record_draw(self._name, b"i", "randint",
                            sys._getframe(1))
        return self._raw.randint(a, b)

    def choice(self, seq):
        san = self._san
        if san.enabled:
            san.record_draw(self._name, b"c", "choice",
                            sys._getframe(1))
        return self._raw.choice(seq)

    def choices(self, population, *args, **kwargs):
        san = self._san
        if san.enabled:
            san.record_draw(self._name, b"C", "choices",
                            sys._getframe(1))
        return self._raw.choices(population, *args, **kwargs)

    def shuffle(self, x):
        san = self._san
        if san.enabled:
            san.record_draw(self._name, b"s", "shuffle",
                            sys._getframe(1))
        return self._raw.shuffle(x)

    def sample(self, population, k, **kwargs):
        san = self._san
        if san.enabled:
            san.record_draw(self._name, b"S", "sample",
                            sys._getframe(1))
        return self._raw.sample(population, k, **kwargs)

    def uniform(self, a, b):
        san = self._san
        if san.enabled:
            san.record_draw(self._name, b"u", "uniform",
                            sys._getframe(1))
        return self._raw.uniform(a, b)

    def triangular(self, *args, **kwargs):
        san = self._san
        if san.enabled:
            san.record_draw(self._name, b"t", "triangular",
                            sys._getframe(1))
        return self._raw.triangular(*args, **kwargs)

    def gauss(self, mu=0.0, sigma=1.0):
        san = self._san
        if san.enabled:
            san.record_draw(self._name, b"G", "gauss",
                            sys._getframe(1))
        return self._raw.gauss(mu, sigma)

    def normalvariate(self, mu=0.0, sigma=1.0):
        san = self._san
        if san.enabled:
            san.record_draw(self._name, b"n", "normalvariate",
                            sys._getframe(1))
        return self._raw.normalvariate(mu, sigma)

    def expovariate(self, lambd=1.0):
        san = self._san
        if san.enabled:
            san.record_draw(self._name, b"e", "expovariate",
                            sys._getframe(1))
        return self._raw.expovariate(lambd)

    def randbytes(self, n):
        san = self._san
        if san.enabled:
            san.record_draw(self._name, b"y", "randbytes",
                            sys._getframe(1))
        return self._raw.randbytes(n)

    def __setstate__(self, state):  # pragma: no cover - __reduce__ path
        raise TypeError("InstrumentedStream pickles via __reduce__")
