"""Perf instrumentation for the measurement pipeline.

``StageTimer`` accumulates wall-clock time and event counters per named
pipeline stage; ``PERF`` is the process-global timer that deeply nested
code (e.g. the campaign's detection passes) records into without any
plumbing.  ``repro.perf.bench`` turns the timings into a throughput
report (``BENCH_PIPELINE.json`` / ``repro bench``).
"""

from repro.perf.instrumentation import PERF, StageTimer, paused_gc

__all__ = ["PERF", "StageTimer", "paused_gc"]
