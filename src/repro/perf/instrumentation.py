"""Stage timers and event counters for pipeline benchmarking."""

from __future__ import annotations

import gc
from contextlib import contextmanager
from time import perf_counter
from typing import Callable, Dict, Iterator, List


@contextmanager
def paused_gc() -> Iterator[None]:
    """Suspend generational garbage collection for a pipeline stage.

    The simulation's hot paths allocate millions of short-lived,
    acyclic objects (likes, activity records, limiter events); cyclic
    collection passes over those nurseries are pure overhead — roughly
    10% of campaign wall clock.  Collection is re-enabled (never forced)
    on exit, so any cycles are reclaimed at the next natural threshold.
    Nested uses are safe: only the outermost re-enables.
    """
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


class StageTimer:
    """Accumulates wall-clock seconds and event counts per stage.

    Stages may run more than once (e.g. the campaign's periodic
    detection passes); their durations accumulate.  Counters attach
    throughput numerators to stages — ``events_per_second`` divides
    one by the other.
    """

    __slots__ = ("stages", "counters")

    #: Stage-boundary observers shared by every timer instance —
    #: called as ``listener(name, entering)``.  The telemetry registry
    #: hooks in here to know the current stage, so the hook must fire
    #: for ad-hoc bench timers as well as the global PERF.
    listeners: List[Callable[[str, bool], None]] = []

    def __init__(self) -> None:
        self.stages: Dict[str, float] = {}
        self.counters: Dict[str, int] = {}

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        for listener in StageTimer.listeners:
            listener(name, True)
        start = perf_counter()
        try:
            yield
        finally:
            elapsed = perf_counter() - start
            self.stages[name] = self.stages.get(name, 0.0) + elapsed
            for listener in StageTimer.listeners:
                listener(name, False)

    def add(self, name: str, seconds: float) -> None:
        self.stages[name] = self.stages.get(name, 0.0) + seconds

    def count(self, name: str, events: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + events

    def count_many(self, counts: Dict[str, int], prefix: str = "") -> None:
        """Merge a whole counter dict (e.g. fault/retry tallies)."""
        for name, events in counts.items():
            self.count(prefix + name, events)

    def seconds(self, name: str) -> float:
        return self.stages.get(name, 0.0)

    def events_per_second(self, stage: str, counter: str) -> float:
        elapsed = self.stages.get(stage, 0.0)
        if elapsed <= 0.0:
            return 0.0
        return self.counters.get(counter, 0) / elapsed

    def total_seconds(self) -> float:
        return sum(self.stages.values())

    def reset(self) -> None:
        self.stages.clear()
        self.counters.clear()

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        return {
            "stages": dict(self.stages),
            "counters": dict(self.counters),
        }


#: Process-global timer for instrumentation points that sit too deep to
#: thread a timer through (reset it before benchmarking a run).
PERF = StageTimer()
