"""Pipeline throughput benchmark (``repro bench``, tools/bench_report.py).

Measures wall-clock seconds and events/second for every stage of
``run_full_study`` — build, milking, campaign, detection (the campaign's
clustering passes), experiments — and emits the ``BENCH_PIPELINE.json``
payload.  A baseline tree (e.g. a git worktree of an older commit) can
be benchmarked with the same harness for before/after comparisons.

The simulation is sensitive to string-hash randomisation, so any
cross-process comparison must pin ``PYTHONHASHSEED``; the subprocess
runner does this for you (``hashseed`` argument, default ``"0"``).
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
from typing import Any, Dict, Optional

DEFAULT_SCALE = 0.01
DEFAULT_SEED = 2017


class BaselineError(RuntimeError):
    """A ``--baseline`` tree is unusable (missing, wrong dir, dirty)."""


class GuardError(RuntimeError):
    """A throughput regression guard failed (or could not be checked)."""


def _git_root(path: str) -> Optional[str]:
    """The enclosing git work tree, or None if ``path`` is not in one."""
    current = os.path.abspath(path)
    while True:
        if os.path.exists(os.path.join(current, ".git")):
            return current
        parent = os.path.dirname(current)
        if parent == current:
            return None
        current = parent


def validate_baseline(src_dir: str) -> None:
    """Fail early — with an actionable message — on a bad baseline tree.

    Checks that ``src_dir`` actually contains the ``repro`` package and
    that its enclosing git worktree (if any) has no uncommitted changes;
    a dirty baseline would silently benchmark unreviewed code.
    """
    if not os.path.isdir(src_dir):
        raise BaselineError(
            f"baseline src dir does not exist: {src_dir}\n"
            "create one with: git worktree add /tmp/baseline <ref> "
            "and pass /tmp/baseline/src")
    if not os.path.isfile(os.path.join(src_dir, "repro", "__init__.py")):
        raise BaselineError(
            f"baseline src dir has no repro package: {src_dir}\n"
            "pass the checkout's src directory (e.g. /tmp/baseline/src), "
            "not the checkout root")
    root = _git_root(src_dir)
    if root is None:
        return  # exported tree / tarball: nothing to check
    try:
        result = subprocess.run(
            ["git", "-C", root, "status", "--porcelain",
             "--untracked-files=no"],
            capture_output=True, text=True, timeout=30)
    except (OSError, subprocess.TimeoutExpired):
        return  # no git binary: skip the dirtiness check
    if result.returncode != 0:
        return
    dirty = result.stdout.strip()
    if dirty:
        listing = "\n".join(
            "  " + line for line in dirty.splitlines()[:10])
        raise BaselineError(
            f"baseline worktree {root} has uncommitted changes:\n"
            f"{listing}\n"
            "commit, stash, or recreate the worktree so the benchmark "
            "compares two well-defined trees")

#: Stage order for reports.  ``detection`` is a sub-stage of the
#: campaign (its seconds are included in the campaign's), broken out
#: because it is a pipeline phase of its own in the paper.
STAGE_ORDER = ("build", "milking", "campaign", "detection", "experiments")

#: What one "event" means per stage.
STAGE_EVENTS = {
    "build": "accounts created",
    "milking": "api requests logged",
    "campaign": "api requests logged",
    "detection": "candidate pairs scored",
    "experiments": "log rows analysed",
}


def _wave_histograms(snapshot: Dict[str, Any]) -> Dict[str, Any]:
    """Per-stage p50/p95/p99 for the delivery-wave histogram families.

    Quantiles are integer bucket upper bounds (see
    :func:`repro.telemetry.export.histogram_quantiles`), so the values
    are deterministic and safe to bake into benchmark baselines.
    """
    from repro.telemetry.export import histogram_quantiles

    out: Dict[str, Any] = {}
    for name, labels, bounds, buckets, total in snapshot["histograms"]:
        if name not in ("wave_size", "wave_limiter_denials"):
            continue
        stage = dict(tuple(pair) for pair in labels).get("stage", "")
        entry = histogram_quantiles(bounds, buckets)
        entry["sum"] = total
        out.setdefault(name, {})[stage or "(none)"] = entry
    return out


def _payload(scale: float, seed: int, parallel_experiments: bool,
             stage_seconds: Dict[str, float],
             stage_events: Dict[str, int],
             total_rows: int,
             histograms: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    stages: Dict[str, Any] = {}
    for name in STAGE_ORDER:
        if name not in stage_seconds:
            continue
        seconds = stage_seconds[name]
        events = stage_events.get(name, 0)
        stages[name] = {
            "seconds": round(seconds, 4),
            "events": events,
            "events_per_second": (round(events / seconds, 1)
                                  if seconds > 0 else 0.0),
            "event_unit": STAGE_EVENTS.get(name, "events"),
        }
    # Detection runs inside the campaign stage, so the end-to-end total
    # only sums the four top-level stages.
    total = sum(stage_seconds.get(name, 0.0)
                for name in ("build", "milking", "campaign", "experiments"))
    document: Dict[str, Any] = {
        "scale": scale,
        "seed": seed,
        "python": platform.python_version(),
        "pythonhashseed": os.environ.get("PYTHONHASHSEED"),
        "parallel_experiments": parallel_experiments,
        "total_seconds": round(total, 4),
        "total_log_rows": total_rows,
        "rows_per_second": (round(total_rows / total, 1)
                            if total > 0 else 0.0),
        "stages": stages,
    }
    if histograms:
        document["wave_histograms"] = histograms
    return document


def run_benchmark(scale: float = DEFAULT_SCALE, seed: int = DEFAULT_SEED,
                  parallel_experiments: bool = False,
                  milking_days: Optional[int] = None,
                  campaign_days: Optional[int] = None,
                  sanitize: bool = False) -> Dict[str, Any]:
    """Benchmark a full study in-process and return the payload.

    Stage wall-clock comes from the telemetry registry's stage view
    (``TELEMETRY.stages`` — the perf shell's StageTimer); the metrics
    plane rides along so the payload can carry deterministic wave-size
    and limiter-denial quantiles next to the timings.
    """
    from repro.core.config import StudyConfig
    from repro.experiments.runner import run_full_study
    from repro.perf import StageTimer
    from repro.telemetry import TELEMETRY

    overrides: Dict[str, Any] = {}
    if milking_days is not None:
        overrides["milking_days"] = milking_days
    if campaign_days is not None:
        overrides["campaign_days"] = campaign_days
    config = StudyConfig(scale=scale, seed=seed, **overrides)

    stage_view = TELEMETRY.stages
    stage_view.reset()
    was_enabled = TELEMETRY.enabled
    TELEMETRY.reset()
    TELEMETRY.enable()
    sanitizer_events = None
    if sanitize:
        from repro.sanitizer import SANITIZER

        SANITIZER.reset()
        SANITIZER.enable()
    timer = StageTimer()
    try:
        artifacts, _report = run_full_study(
            config, timer=timer, parallel_experiments=parallel_experiments)
    finally:
        TELEMETRY.enabled = was_enabled
        if sanitize:
            sanitizer_events = SANITIZER.event_total()
            SANITIZER.reset()
            SANITIZER.disable()
    histograms = _wave_histograms(TELEMETRY.snapshot())

    counters = timer.counters
    total_rows = len(artifacts.world.api.log.all())
    stage_seconds = dict(timer.stages)
    stage_events = {
        "build": len(artifacts.world.platform.accounts),
        "milking": counters.get("milking.log_rows", 0),
        "campaign": counters.get("campaign.log_rows", 0),
        "experiments": counters.get("experiments.log_rows", 0),
    }
    detection_seconds = stage_view.seconds("detection")
    if detection_seconds > 0:
        stage_seconds["detection"] = detection_seconds
        stage_events["detection"] = stage_view.counters.get(
            "detection.pairs_scored", 0)
    payload = _payload(scale, seed, parallel_experiments, stage_seconds,
                       stage_events, total_rows, histograms=histograms)
    payload["sanitize"] = sanitize
    if sanitizer_events is not None:
        payload["sanitizer_events"] = sanitizer_events
    return payload


# ----------------------------------------------------------------------
# Subprocess harness — identical timing logic expressed against the
# public runner API only, so it also runs against older trees that
# predate the perf module (for before/after baselines).
# ----------------------------------------------------------------------
_CHILD_SCRIPT = r"""
import json, sys, time
options = json.loads(sys.argv[1])
from repro.core.config import StudyConfig
from repro.experiments import runner

kwargs = {"scale": options["scale"], "seed": options["seed"]}
for key in ("milking_days", "campaign_days"):
    if options.get(key) is not None:
        kwargs[key] = options[key]
config = StudyConfig(**kwargs)

try:
    from repro.sanitizer import SANITIZER
except ImportError:  # baseline tree predates the sanitizer
    SANITIZER = None
if SANITIZER is not None and options.get("sanitize"):
    SANITIZER.reset()
    SANITIZER.enable()

try:
    from repro.telemetry import TELEMETRY
except ImportError:  # baseline tree predates the telemetry plane
    TELEMETRY = None
if TELEMETRY is not None:
    TELEMETRY.reset()
    TELEMETRY.enable()

# Stage scoping: StageTimer's class-level listeners feed the telemetry
# registry's stage stack, so wave histograms recorded inside a stage
# carry its name as the ``stage`` label.  Baseline trees that predate
# the perf module just skip the scoping (no telemetry there anyway).
import contextlib
try:
    from repro.perf import StageTimer as _StageTimer
    _stage_timer = _StageTimer()
except ImportError:
    _stage_timer = None
def _stage(name):
    if _stage_timer is None:
        return contextlib.nullcontext()
    return _stage_timer.stage(name)

seconds, events = {}, {}
start = time.perf_counter()
with _stage("build"):
    artifacts = runner.build_world(config)
seconds["build"] = time.perf_counter() - start
events["build"] = len(artifacts.world.platform.accounts)
log = artifacts.world.api.log

rows0 = len(log.all())
start = time.perf_counter()
with _stage("milking"):
    runner.run_milking(artifacts)
seconds["milking"] = time.perf_counter() - start
rows1 = len(log.all())
events["milking"] = rows1 - rows0

start = time.perf_counter()
with _stage("campaign"):
    runner.run_campaign(artifacts)
seconds["campaign"] = time.perf_counter() - start
rows2 = len(log.all())
events["campaign"] = rows2 - rows1

start = time.perf_counter()
with _stage("experiments"):
    if options.get("parallel_experiments"):
        runner.run_experiments(artifacts, parallel=True)
    else:
        runner.run_experiments(artifacts)
seconds["experiments"] = time.perf_counter() - start
events["experiments"] = rows2

try:
    from repro.perf import PERF
except ImportError:
    PERF = None
if PERF is not None and PERF.seconds("detection") > 0:
    seconds["detection"] = PERF.seconds("detection")
    events["detection"] = PERF.counters.get("detection.pairs_scored", 0)

histograms = {}
if TELEMETRY is not None:
    from repro.telemetry.export import histogram_quantiles
    for name, labels, bounds, buckets, total in (
            TELEMETRY.snapshot()["histograms"]):
        if name not in ("wave_size", "wave_limiter_denials"):
            continue
        stage = dict(tuple(pair) for pair in labels).get("stage", "")
        entry = histogram_quantiles(bounds, buckets)
        entry["sum"] = total
        histograms.setdefault(name, {})[stage or "(none)"] = entry

sanitizer_events = None
if SANITIZER is not None and options.get("sanitize"):
    sanitizer_events = SANITIZER.event_total()

print("BENCH_JSON " + json.dumps(
    {"seconds": seconds, "events": events, "total_rows": rows2,
     "histograms": histograms, "sanitizer_events": sanitizer_events}))
"""


def bench_tree(src_dir: str, scale: float = DEFAULT_SCALE,
               seed: int = DEFAULT_SEED, hashseed: str = "0",
               parallel_experiments: bool = False,
               milking_days: Optional[int] = None,
               campaign_days: Optional[int] = None,
               sanitize: bool = False,
               timeout: int = 3600) -> Dict[str, Any]:
    """Benchmark the tree rooted at ``src_dir`` in a fresh interpreter.

    ``src_dir`` is the directory that contains the ``repro`` package
    (usually ``<checkout>/src``).  ``PYTHONHASHSEED`` is pinned so two
    trees see identical simulated workloads.  With ``sanitize`` the
    reprosan shadow trace records throughout (trees that predate the
    sanitizer silently skip it).
    """
    options = {
        "scale": scale,
        "seed": seed,
        "parallel_experiments": parallel_experiments,
        "milking_days": milking_days,
        "campaign_days": campaign_days,
        "sanitize": sanitize,
    }
    env = dict(os.environ)
    env["PYTHONPATH"] = src_dir
    env["PYTHONHASHSEED"] = hashseed
    result = subprocess.run(
        [sys.executable, "-c", _CHILD_SCRIPT, json.dumps(options)],
        capture_output=True, text=True, env=env, timeout=timeout)
    if result.returncode != 0:
        raise RuntimeError(
            f"benchmark subprocess failed for {src_dir}:\n{result.stderr}")
    marker = [line for line in result.stdout.splitlines()
              if line.startswith("BENCH_JSON ")]
    if not marker:
        raise RuntimeError(
            f"benchmark subprocess for {src_dir} produced no payload")
    raw = json.loads(marker[-1][len("BENCH_JSON "):])
    payload = _payload(scale, seed, parallel_experiments,
                       raw["seconds"], raw["events"], raw["total_rows"],
                       histograms=raw.get("histograms") or None)
    payload["pythonhashseed"] = hashseed
    payload["src_dir"] = src_dir
    payload["sanitize"] = sanitize
    if raw.get("sanitizer_events") is not None:
        payload["sanitizer_events"] = raw["sanitizer_events"]
    return payload


def _best_of(payloads):
    """The payload with the lowest end-to-end wall clock.

    Workloads are deterministic (pinned hashseed), so run-to-run spread
    is scheduler noise; the minimum is the standard low-noise estimator.
    """
    best = min(payloads, key=lambda p: p["total_seconds"])
    best["runs"] = len(payloads)
    best["total_seconds_all_runs"] = [p["total_seconds"] for p in payloads]
    return best


def compare_trees(current_src: str, baseline_src: Optional[str],
                  scale: float = DEFAULT_SCALE, seed: int = DEFAULT_SEED,
                  hashseed: str = "0", parallel_experiments: bool = False,
                  milking_days: Optional[int] = None,
                  campaign_days: Optional[int] = None,
                  repeats: int = 1,
                  sanitize: bool = False) -> Dict[str, Any]:
    """Build the full ``BENCH_PIPELINE.json`` document.

    With ``repeats > 1`` each tree is benchmarked that many times —
    interleaved (current, baseline, current, ...) so slow drift in
    machine load hits both trees alike — and the best run per tree is
    reported.
    """
    if baseline_src:
        validate_baseline(baseline_src)
    kwargs = dict(scale=scale, seed=seed, hashseed=hashseed,
                  parallel_experiments=parallel_experiments,
                  milking_days=milking_days, campaign_days=campaign_days,
                  sanitize=sanitize)
    repeats = max(1, repeats)
    current_runs, baseline_runs = [], []
    for _ in range(repeats):
        current_runs.append(bench_tree(current_src, **kwargs))
        if baseline_src:
            baseline_runs.append(bench_tree(baseline_src, **kwargs))
    current = _best_of(current_runs)
    baseline = _best_of(baseline_runs) if baseline_runs else None
    document: Dict[str, Any] = {
        "benchmark": "run_full_study",
        "meta": {
            "scale": scale,
            "seed": seed,
            "pythonhashseed": hashseed,
            "milking_days": milking_days,
            "campaign_days": campaign_days,
            "parallel_experiments": parallel_experiments,
            "repeats": repeats,
        },
        "current": current,
    }
    if baseline is not None:
        document["baseline"] = baseline
        if current["total_seconds"] > 0:
            document["speedup"] = round(
                baseline["total_seconds"] / current["total_seconds"], 2)
    return document


def sweep_tree(src_dir: str, scales, seed: int = DEFAULT_SEED,
               hashseed: str = "0",
               milking_days: Optional[int] = None,
               campaign_days: Optional[int] = None,
               repeats: int = 1) -> list:
    """Benchmark ``src_dir`` at each scale in ``scales`` (best of
    ``repeats`` runs per scale) and return the payload list for the
    document's ``sweep`` section.

    Each entry additionally records the study-day overrides so a guard
    run can match a reference entry to its exact workload, not just its
    scale.
    """
    entries = []
    for scale in scales:
        runs = [bench_tree(src_dir, scale=scale, seed=seed,
                           hashseed=hashseed,
                           milking_days=milking_days,
                           campaign_days=campaign_days)
                for _ in range(max(1, repeats))]
        payload = _best_of(runs)
        payload["milking_days"] = milking_days
        payload["campaign_days"] = campaign_days
        entries.append(payload)
    return entries


def bench_sanitizer(src_dir: str, current: Dict[str, Any],
                    repeats: int = 1, **kwargs) -> Dict[str, Any]:
    """The document's ``sanitizer`` section: the same workload as
    ``current`` re-benchmarked with the reprosan trace recording, plus
    the per-stage wall-clock overhead fraction vs the untraced run.

    The shadow trace is supposed to be a cheap observer — bounded
    rolling digests, no I/O until export — so the overhead column is
    what keeps hook creep honest (see
    :func:`check_sanitizer_overhead`).
    """
    runs = [bench_tree(src_dir, sanitize=True, **kwargs)
            for _ in range(max(1, repeats))]
    traced = _best_of(runs)
    overhead = {}
    for name, stage in traced["stages"].items():
        base = current["stages"].get(name, {}).get("seconds", 0.0)
        if base > 0:
            overhead[name] = round(stage["seconds"] / base - 1.0, 4)
    return {"run": traced, "overhead": overhead}


def check_sanitizer_overhead(document: Dict[str, Any],
                             limit: float = 0.10) -> str:
    """Guard the sanitizer's campaign-stage overhead.

    Raises :class:`GuardError` when the traced campaign stage ran more
    than ``limit`` (fraction, default 0.10 = 10%) slower than the
    untraced one.  Wall-clock based, so widen ``limit`` on noisy shared
    runners rather than deleting the check.
    """
    section = document.get("sanitizer")
    if not section:
        raise GuardError(
            "document has no sanitizer section; re-run with --sanitize")
    overhead = section.get("overhead", {}).get("campaign")
    if overhead is None:
        raise GuardError(
            "sanitizer section has no campaign-stage overhead entry")
    verdict = (f"sanitizer campaign-stage overhead {overhead:+.1%} "
               f"(limit {limit:.0%})")
    if overhead > limit:
        raise GuardError(f"sanitizer overhead regression: {verdict}")
    return f"guard ok: {verdict}"


def _matching_reference(reference: Dict[str, Any], scale: float,
                        milking_days: Optional[int],
                        campaign_days: Optional[int]):
    """The reference payload benchmarked with this exact workload."""
    meta = reference.get("meta", {})
    current = reference.get("current")
    if (current is not None
            and current.get("scale") == scale
            and meta.get("milking_days") == milking_days
            and meta.get("campaign_days") == campaign_days):
        return current
    for entry in reference.get("sweep", ()):
        if (entry.get("scale") == scale
                and entry.get("milking_days") == milking_days
                and entry.get("campaign_days") == campaign_days):
            return entry
    return None


def check_campaign_regression(document: Dict[str, Any],
                              reference: Dict[str, Any],
                              tolerance: float = 0.2) -> str:
    """Guard the campaign stage's throughput against a reference run.

    Compares the freshly benchmarked campaign events/second in
    ``document["current"]`` with the reference entry (main payload or
    sweep entry) that used the identical workload — same scale and day
    overrides.  Raises :class:`GuardError` when throughput dropped by
    more than ``tolerance`` (a fraction, default 0.2 = 20%) or when no
    comparable reference entry exists; returns a human-readable verdict
    otherwise.

    The guard compares wall-clock throughput, so it is only meaningful
    when reference and current run on comparable hardware; widen
    ``tolerance`` on noisy shared runners rather than deleting the
    check.
    """
    current = document["current"]
    meta = document.get("meta", {})
    scale = current.get("scale")
    entry = _matching_reference(reference, scale,
                                meta.get("milking_days"),
                                meta.get("campaign_days"))
    if entry is None:
        raise GuardError(
            f"reference document has no entry for scale={scale} "
            f"milking_days={meta.get('milking_days')} "
            f"campaign_days={meta.get('campaign_days')}; regenerate the "
            "reference with --sweep covering this workload")
    try:
        reference_eps = entry["stages"]["campaign"]["events_per_second"]
        current_eps = current["stages"]["campaign"]["events_per_second"]
    except KeyError as error:
        raise GuardError(
            f"campaign stage missing from payload: {error}") from error
    if reference_eps <= 0:
        raise GuardError(
            f"reference campaign throughput is {reference_eps}; cannot guard")
    floor = reference_eps * (1.0 - tolerance)
    verdict = (f"campaign throughput {current_eps:,.0f} events/s vs "
               f"reference {reference_eps:,.0f} (floor {floor:,.0f} at "
               f"{tolerance:.0%} tolerance)")
    if current_eps < floor:
        raise GuardError(
            f"campaign throughput regression: {verdict}")
    return f"guard ok: {verdict}"


def render(document: Dict[str, Any]) -> str:
    """Human-readable rendering of a benchmark document."""
    lines = []
    for label in ("baseline", "current"):
        payload = document.get(label)
        if payload is None:
            continue
        lines.append(f"{label} ({payload['total_seconds']:.2f}s total, "
                     f"{payload['rows_per_second']:,.0f} rows/s):")
        for name, stage in payload["stages"].items():
            lines.append(
                f"  {name:<12} {stage['seconds']:>8.2f}s  "
                f"{stage['events']:>9,} {stage['event_unit']}  "
                f"({stage['events_per_second']:,.0f}/s)")
        for family, by_stage in payload.get("wave_histograms",
                                            {}).items():
            for stage_name, entry in by_stage.items():
                quantiles = " ".join(
                    f"{k}={'inf' if entry[k] is None else entry[k]}"
                    for k in ("p50", "p95", "p99"))
                lines.append(
                    f"  {family:<20} [{stage_name}] "
                    f"count={entry['count']} {quantiles}")
    if "speedup" in document:
        lines.append(f"speedup: {document['speedup']:.2f}x")
    sanitizer = document.get("sanitizer")
    if sanitizer:
        run = sanitizer["run"]
        events = run.get("sanitizer_events")
        traced = (f"sanitized run ({run['total_seconds']:.2f}s total"
                  + (f", {events:,} trace events" if events else "")
                  + "):")
        lines.append(traced)
        for name, fraction in sanitizer["overhead"].items():
            seconds = run["stages"][name]["seconds"]
            lines.append(f"  {name:<12} {seconds:>8.2f}s  "
                         f"overhead {fraction:+.1%}")
    sweep = document.get("sweep")
    if sweep:
        lines.append("scale sweep (current tree):")
        for payload in sweep:
            campaign = payload["stages"].get("campaign", {})
            lines.append(
                f"  scale {payload['scale']:<6}  "
                f"{payload['total_seconds']:>8.2f}s total  "
                f"{payload['total_log_rows']:>9,} rows  "
                f"campaign {campaign.get('events_per_second', 0.0):,.0f}/s")
    return "\n".join(lines)
