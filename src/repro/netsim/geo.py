"""Geolocation: mapping IPs and users to countries.

Country shares drive Table 2 (Alexa top-country percentages) and Table 5
(short-URL click geolocation).  The paper's visitor base concentrates in
India, Egypt, Turkey, Vietnam, Bangladesh, Pakistan, Indonesia and Algeria.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Sequence, Tuple

from repro.netsim.ip import IPv4Address

#: Default visitor-country mix observed across collusion networks (§4.1).
DEFAULT_COUNTRY_MIX: Sequence[Tuple[str, float]] = (
    ("IN", 0.45),
    ("EG", 0.10),
    ("VN", 0.09),
    ("BD", 0.08),
    ("PK", 0.08),
    ("ID", 0.07),
    ("DZ", 0.05),
    ("TR", 0.04),
    ("US", 0.02),
    ("OTHER", 0.02),
)


class GeoDatabase:
    """Assigns and resolves country codes for IP addresses."""

    def __init__(self, default_mix: Sequence[Tuple[str, float]] = DEFAULT_COUNTRY_MIX) -> None:
        total = sum(weight for _, weight in default_mix)
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"country mix weights must sum to 1, got {total}")
        self._mix = list(default_mix)
        self._by_ip: Dict[IPv4Address, str] = {}

    def assign(self, address: IPv4Address, country: str) -> None:
        """Pin an IP to a country."""
        self._by_ip[address] = country

    def country_of(self, address: IPv4Address) -> Optional[str]:
        return self._by_ip.get(address)

    def sample_country(self, rng: random.Random,
                       mix: Optional[Sequence[Tuple[str, float]]] = None) -> str:
        """Draw a country from ``mix`` (or the default visitor mix)."""
        chosen_mix = list(mix) if mix is not None else self._mix
        countries = [c for c, _ in chosen_mix]
        weights = [w for _, w in chosen_mix]
        return rng.choices(countries, weights=weights, k=1)[0]

    @staticmethod
    def top_country_share(countries: Sequence[str]) -> Tuple[str, float]:
        """The modal country and its share of ``countries``."""
        if not countries:
            raise ValueError("empty country sample")
        counts: Dict[str, int] = {}
        for country in countries:
            counts[country] = counts.get(country, 0) + 1
        top = max(counts.items(), key=lambda item: (item[1], item[0]))
        return top[0], top[1] / len(countries)
