"""IP pool allocation for services.

Each collusion network sends its Graph API traffic from a pool of source
IPs.  The pool size is the decisive variable in §6.4: networks with a few
IPs die to per-IP rate limits; hublaa.me's >6,000-address pool across two
bulletproof ASes required AS-level blocking.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.netsim.asn import AsRegistry
from repro.netsim.ip import IPv4Address, int_to_ip, ip_to_int


@dataclass
class IpPool:
    """A named set of source addresses a service rotates through."""

    name: str
    addresses: List[IPv4Address]

    def __len__(self) -> int:
        return len(self.addresses)

    def pick(self, rng: random.Random) -> IPv4Address:
        """Choose a source address uniformly at random."""
        if not self.addresses:
            raise ValueError(f"IP pool {self.name!r} is empty")
        return rng.choice(self.addresses)


class IpPoolAllocator:
    """Carves sequential addresses for pools out of announced prefixes."""

    def __init__(self, registry: AsRegistry) -> None:
        self._registry = registry
        self._next_offset: dict = {}

    def allocate(self, name: str, base: IPv4Address, count: int,
                 asn: Optional[int] = None) -> IpPool:
        """Allocate ``count`` sequential addresses starting at ``base``.

        If ``asn`` is given, every allocated address must resolve to that
        AS — a sanity check that the caller announced the prefix first.
        """
        if count <= 0:
            raise ValueError(f"pool size must be positive, got {count}")
        start = self._next_offset.get(base, ip_to_int(base))
        addresses = [int_to_ip(start + i) for i in range(count)]
        self._next_offset[base] = start + count
        if asn is not None:
            for address in (addresses[0], addresses[-1]):
                resolved = self._registry.asn_of(address)
                if resolved != asn:
                    raise ValueError(
                        f"{address} resolves to AS{resolved}, expected "
                        f"AS{asn}; announce the prefix before allocating"
                    )
        return IpPool(name=name, addresses=addresses)

    def allocate_split(self, name: str, bases: Sequence[IPv4Address],
                       count: int) -> IpPool:
        """Allocate ``count`` addresses split evenly across ``bases``.

        Used for hublaa.me's pool, which spans two ASes.
        """
        if not bases:
            raise ValueError("need at least one base prefix")
        per_base = count // len(bases)
        remainder = count % len(bases)
        addresses: List[IPv4Address] = []
        for i, base in enumerate(bases):
            take = per_base + (1 if i < remainder else 0)
            if take:
                addresses.extend(
                    self.allocate(f"{name}[{i}]", base, take).addresses
                )
        return IpPool(name=name, addresses=addresses)
