"""Network substrate: IPv4 addresses, autonomous systems, geolocation.

Graph API requests carry a source IP; the countermeasures of §6.4 rate-limit
by IP and block by AS, so the simulator needs a working IP→AS mapping and
per-network IP pools (official-liker.net used a handful of IPs, hublaa.me a
pool of >6,000 across two bulletproof-hosting ASes).
"""

from repro.netsim.ip import IPv4Address, ip_to_int, int_to_ip
from repro.netsim.asn import AutonomousSystem, AsRegistry
from repro.netsim.geo import GeoDatabase
from repro.netsim.pools import IpPool, IpPoolAllocator

__all__ = [
    "IPv4Address",
    "ip_to_int",
    "int_to_ip",
    "AutonomousSystem",
    "AsRegistry",
    "GeoDatabase",
    "IpPool",
    "IpPoolAllocator",
]
