"""IPv4 address handling.

Addresses are plain dotted-quad strings at module boundaries (that is what
request logs store) with integer helpers for range math.
"""

from __future__ import annotations

IPv4Address = str


def ip_to_int(address: IPv4Address) -> int:
    """Convert ``"1.2.3.4"`` to its 32-bit integer value."""
    parts = address.split(".")
    if len(parts) != 4:
        raise ValueError(f"malformed IPv4 address: {address!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"malformed IPv4 address: {address!r}")
        value = (value << 8) | octet
    return value


def int_to_ip(value: int) -> IPv4Address:
    """Convert a 32-bit integer to dotted-quad form."""
    if not 0 <= value <= 0xFFFFFFFF:
        raise ValueError(f"out of IPv4 range: {value}")
    return ".".join(str((value >> shift) & 0xFF)
                    for shift in (24, 16, 8, 0))


def cidr_range(base: IPv4Address, prefix_len: int) -> tuple:
    """Return the (first, last) integer addresses of ``base/prefix_len``."""
    if not 0 <= prefix_len <= 32:
        raise ValueError(f"bad prefix length: {prefix_len}")
    size = 1 << (32 - prefix_len)
    start = ip_to_int(base) & ~(size - 1)
    return start, start + size - 1
