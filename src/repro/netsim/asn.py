"""Autonomous systems and the IP→AS mapping."""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.netsim.ip import IPv4Address, cidr_range, ip_to_int


@dataclass(frozen=True)
class AutonomousSystem:
    """An AS with an operator classification.

    ``is_bulletproof`` marks the bulletproof-hosting providers (§6.4,
    citing Alrwais et al.) that hublaa.me's 6,000-IP pool lived in.
    """

    asn: int
    name: str
    country: str = "US"
    is_bulletproof: bool = False


class AsRegistry:
    """Registers ASes with their CIDR prefixes and resolves IPs to ASes."""

    def __init__(self) -> None:
        self._systems: Dict[int, AutonomousSystem] = {}
        # Sorted, non-overlapping (start, end, asn) ranges.
        self._ranges: List[Tuple[int, int, int]] = []
        self._starts: List[int] = []

    def register(self, asn: int, name: str, country: str = "US",
                 is_bulletproof: bool = False) -> AutonomousSystem:
        if asn in self._systems:
            raise ValueError(f"AS{asn} already registered")
        system = AutonomousSystem(asn=asn, name=name, country=country,
                                  is_bulletproof=is_bulletproof)
        self._systems[asn] = system
        return system

    def get(self, asn: int) -> AutonomousSystem:
        system = self._systems.get(asn)
        if system is None:
            raise KeyError(f"unknown AS{asn}")
        return system

    def announce(self, asn: int, base: IPv4Address, prefix_len: int) -> None:
        """Attach the prefix ``base/prefix_len`` to AS ``asn``."""
        self.get(asn)  # validate existence
        start, end = cidr_range(base, prefix_len)
        insert_at = bisect.bisect_left(self._starts, start)
        neighbours = self._ranges[max(0, insert_at - 1):insert_at + 1]
        for other_start, other_end, _ in neighbours:
            if start <= other_end and other_start <= end:
                raise ValueError(
                    f"prefix {base}/{prefix_len} overlaps an announced range"
                )
        self._ranges.insert(insert_at, (start, end, asn))
        self._starts.insert(insert_at, start)

    def lookup(self, address: IPv4Address) -> Optional[AutonomousSystem]:
        """Resolve an IP to its announcing AS (None if unannounced)."""
        value = ip_to_int(address)
        idx = bisect.bisect_right(self._starts, value) - 1
        if idx < 0:
            return None
        start, end, asn = self._ranges[idx]
        if start <= value <= end:
            return self._systems[asn]
        return None

    def asn_of(self, address: IPv4Address) -> Optional[int]:
        system = self.lookup(address)
        return system.asn if system else None
