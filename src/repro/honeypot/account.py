"""Honeypot accounts: freshly registered accounts we control.

A honeypot account joins exactly one collusion network and performs no
activity of its own, so everything that happens *to* it (incoming likes)
and everything performed *by* it (the network spending its token) is
attributable to that network (§4, footnote 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class HoneypotAccount:
    """One honeypot bound to one collusion network."""

    account_id: str
    network_domain: str
    joined_at: int
    like_post_ids: List[str] = field(default_factory=list)
    comment_post_ids: List[str] = field(default_factory=list)

    @property
    def posts_submitted(self) -> int:
        return len(self.like_post_ids)


def create_honeypot(world, network, name: Optional[str] = None) -> HoneypotAccount:
    """Register a fresh account and join it to ``network``."""
    account = world.platform.register_account(  # reprolint: disable=RL301 — we (the measurement side) create honeypots through the first-party signup flow, exactly as §4's methodology does with real accounts
        name or f"Honeypot ({network.domain})", is_honeypot=True)
    network.join(account.account_id)
    return HoneypotAccount(
        account_id=account.account_id,
        network_domain=network.domain,
        joined_at=world.clock.now(),
    )
