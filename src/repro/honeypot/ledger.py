"""The ledger of colluding accounts observed by honeypots.

Every like/comment crawled from a honeypot timeline identifies a colluding
account (and the exploited application it acted through).  The ledger is
the honeypots' institutional memory: countermeasures invalidate "all
tokens observed till day N" or "tokens newly observed each day" straight
from here (§6.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set


@dataclass
class Observation:
    """First/last sighting of one colluding account."""

    account_id: str
    app_id: Optional[str]
    first_seen: int
    last_seen: int
    networks: Set[str]
    sightings: int = 1


class MilkedTokenLedger:
    """Accumulates account observations with by-day indexes."""

    def __init__(self) -> None:
        self._observations: Dict[str, Observation] = {}
        self._new_by_day: Dict[int, List[str]] = {}
        self._seen_by_day: Dict[int, Set[str]] = {}

    def __len__(self) -> int:
        return len(self._observations)

    def observe(self, account_id: str, network: str, timestamp: int,
                day: int, app_id: Optional[str] = None) -> Observation:
        """Record a sighting of ``account_id`` acting for ``network``."""
        self._seen_by_day.setdefault(day, set()).add(account_id)
        obs = self._observations.get(account_id)
        if obs is None:
            obs = Observation(account_id=account_id, app_id=app_id,
                              first_seen=timestamp, last_seen=timestamp,
                              networks={network})
            self._observations[account_id] = obs
            self._new_by_day.setdefault(day, []).append(account_id)
        else:
            obs.last_seen = max(obs.last_seen, timestamp)
            obs.networks.add(network)
            obs.sightings += 1
            if app_id is not None and obs.app_id is None:
                obs.app_id = app_id
        return obs

    def get(self, account_id: str) -> Optional[Observation]:
        return self._observations.get(account_id)

    def accounts(self) -> List[str]:
        """Every account ever observed, in first-seen order."""
        ordered: List[str] = []
        for day in sorted(self._new_by_day):
            ordered.extend(self._new_by_day[day])
        return ordered

    def accounts_for_network(self, network: str) -> List[str]:
        return [a for a, obs in self._observations.items()
                if network in obs.networks]

    def newly_observed_on(self, day: int) -> List[str]:
        """Accounts first seen on simulation day ``day``."""
        return list(self._new_by_day.get(day, ()))

    def observed_on(self, day: int) -> List[str]:
        """Accounts seen *acting* on simulation day ``day``.

        This is the token-level view of "newly observed": an account that
        was milked before, had its token invalidated, and re-joined with a
        fresh token shows up here again on the day the fresh token acts.
        """
        return sorted(self._seen_by_day.get(day, ()))

    def observed_until(self, day: int) -> List[str]:
        """Accounts first seen on or before ``day``."""
        ordered: List[str] = []
        for d in sorted(self._new_by_day):
            if d > day:
                break
            ordered.extend(self._new_by_day[d])
        return ordered

    def multi_network_accounts(self) -> List[str]:
        """Accounts seen acting for more than one collusion network."""
        return [a for a, obs in self._observations.items()
                if len(obs.networks) > 1]
