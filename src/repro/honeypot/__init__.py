"""Honeypot infrastructure: bait accounts that join collusion networks and
"milk" them by repeatedly requesting likes/comments (§4).

The milking driver automates the workflow the paper scripted with Selenium
and a CAPTCHA-solving service; the crawler plays the role of the periodic
timeline/activity-log crawls; the ledger accumulates the colluding accounts
observed — the input to the §6.2 token-invalidation countermeasure.
"""

from repro.honeypot.captcha import CaptchaSolvingService
from repro.honeypot.ledger import MilkedTokenLedger, Observation
from repro.honeypot.account import HoneypotAccount
from repro.honeypot.crawler import TimelineCrawler, OutgoingActivitySummary
from repro.honeypot.milker import (
    MilkingCampaign,
    MilkingResults,
    NetworkMilkingResult,
)

__all__ = [
    "CaptchaSolvingService",
    "MilkedTokenLedger",
    "Observation",
    "HoneypotAccount",
    "TimelineCrawler",
    "OutgoingActivitySummary",
    "MilkingCampaign",
    "MilkingResults",
    "NetworkMilkingResult",
]
