"""The milking campaign driver (§4).

Runs the three-month measurement: one honeypot per collusion network posts
status updates, requests likes (and comments where offered), and crawls
the results daily.  Meanwhile each network keeps spending the honeypots'
tokens on other members' requests, producing the outgoing-activity data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.collusion.ecosystem import CollusionEcosystem
from repro.collusion.network import CollusionNetwork
from repro.faults.retry import RetryPolicy
from repro.honeypot.account import HoneypotAccount, create_honeypot
from repro.honeypot.captcha import CaptchaSolvingService
from repro.honeypot.crawler import OutgoingActivitySummary, TimelineCrawler
from repro.honeypot.ledger import MilkedTokenLedger
from repro.sim.clock import DAY, HOUR


@dataclass
class NetworkMilkingResult:
    """Everything Table 4 / Fig. 4 / Table 6 need for one network."""

    domain: str
    honeypot: HoneypotAccount
    posts_submitted: int = 0
    likes_received: int = 0
    likes_per_post: List[int] = field(default_factory=list)
    cumulative_unique: List[int] = field(default_factory=list)
    unique_accounts: Set[str] = field(default_factory=set)
    comment_posts: int = 0
    comments_received: List[str] = field(default_factory=list)
    outgoing: Optional[OutgoingActivitySummary] = None

    @property
    def membership_estimate(self) -> int:
        return len(self.unique_accounts)

    @property
    def avg_likes_per_post(self) -> float:
        if not self.posts_submitted:
            return 0.0
        return self.likes_received / self.posts_submitted


@dataclass
class MilkingResults:
    """Campaign-wide results plus shared instrumentation."""

    per_network: Dict[str, NetworkMilkingResult]
    ledger: MilkedTokenLedger
    captcha: CaptchaSolvingService
    days: int
    #: Campaign retry-policy counters (all zero on fault-free runs).
    retry_counters: Dict[str, int] = field(default_factory=dict)

    def total_posts(self) -> int:
        return sum(r.posts_submitted for r in self.per_network.values())

    def total_likes(self) -> int:
        return sum(r.likes_received for r in self.per_network.values())

    def total_memberships(self) -> int:
        return sum(r.membership_estimate
                   for r in self.per_network.values())

    def unique_accounts(self) -> int:
        seen: Set[str] = set()
        for result in self.per_network.values():
            seen |= result.unique_accounts
        return len(seen)


class MilkingCampaign:
    """Drives honeypots against a built ecosystem for N days."""

    def __init__(self, world, ecosystem: CollusionEcosystem,
                 networks: Optional[Sequence[str]] = None,
                 captcha: Optional[CaptchaSolvingService] = None) -> None:
        self.world = world
        self.ecosystem = ecosystem
        self.rng = world.rng.stream("milking")
        self.captcha = captcha or CaptchaSolvingService()
        self.ledger = MilkedTokenLedger()
        # Client-side resilience: short deliveries with transient
        # failures are topped up by scheduled follow-ups (inert on
        # fault-free runs, where transient_failures is always zero).
        self.retry_policy = RetryPolicy()
        self.crawler = TimelineCrawler(world, self.ledger)
        domains = list(networks) if networks else list(ecosystem.networks)
        self.honeypots: Dict[str, HoneypotAccount] = {}
        self.results: Dict[str, NetworkMilkingResult] = {}
        for domain in domains:
            network = ecosystem.network(domain)
            honeypot = create_honeypot(world, network)
            self.honeypots[domain] = honeypot
            self.results[domain] = NetworkMilkingResult(
                domain=domain, honeypot=honeypot)

    # ------------------------------------------------------------------
    # Workload planning
    # ------------------------------------------------------------------
    @staticmethod
    def _spread(total: int, days: int) -> List[int]:
        """Distribute ``total`` requests across ``days`` as evenly as the
        integers allow (front-loading the remainder)."""
        if days <= 0:
            raise ValueError("days must be positive")
        base, extra = divmod(total, days)
        return [base + (1 if d < extra else 0) for d in range(days)]

    def _plan(self, days: int) -> Dict[str, Dict[str, List[int]]]:
        plan: Dict[str, Dict[str, List[int]]] = {}
        for domain in self.honeypots:
            profile = self.ecosystem.network(domain).profile
            posts = self.world.config.scaled(profile.posts_milked)
            # Keep a meaningful comment sample even at tiny scales: the
            # Table 6 statistics need a few hundred comments to converge
            # (the paper itself used >=96 posts per network).
            comment_posts = (
                self.world.config.scaled(profile.comment_posts_milked,
                                         minimum=50)
                if profile.comment_style is not None else 0)
            outgoing = self.world.config.scaled(
                profile.outgoing_activities, minimum=0)
            plan[domain] = {
                "likes": self._spread(posts, days),
                "comments": self._spread(comment_posts, days),
                "outgoing": self._spread(outgoing, days),
            }
        return plan

    # ------------------------------------------------------------------
    # Campaign execution
    # ------------------------------------------------------------------
    def run(self, days: Optional[int] = None) -> MilkingResults:
        days = days or self.world.config.milking_days
        plan = self._plan(days)
        for day in range(days):
            self._run_day(day, plan)
        self._finalize()
        return MilkingResults(per_network=self.results, ledger=self.ledger,
                              captcha=self.captcha, days=days,
                              retry_counters=dict(self.retry_policy.counters))

    def _run_day(self, day_index: int,
                 plan: Dict[str, Dict[str, List[int]]]) -> None:
        world = self.world
        day_start = world.clock.now()
        # Schedule the day's honeypot requests and background token usage
        # at jittered times so activity interleaves across networks.
        for domain, quotas in plan.items():
            network = self.ecosystem.network(domain)
            honeypot = self.honeypots[domain]
            self._schedule_like_requests(
                network, honeypot, quotas["likes"][day_index], day_start)
            self._schedule_comment_requests(
                network, honeypot, quotas["comments"][day_index], day_start)
            self._schedule_background(
                network, honeypot, quotas["outgoing"][day_index], day_start)
        world.scheduler.run_until(day_start + DAY - 1)
        # End of day: crawl and housekeeping.
        for domain, honeypot in self.honeypots.items():
            self.crawler.crawl_incoming(honeypot)
        for network in self.ecosystem.networks.values():
            network.daily_tick()
        world.clock.advance_to(day_start + DAY)

    def _schedule_like_requests(self, network: CollusionNetwork,
                                honeypot: HoneypotAccount, count: int,
                                day_start: int) -> None:
        times = self._request_times(network, count, day_start)
        for when in times:
            self.world.scheduler.at(
                when,
                lambda n=network, h=honeypot: self._submit_like_request(n, h),
                label=f"like-req:{network.domain}")

    def _schedule_comment_requests(self, network: CollusionNetwork,
                                   honeypot: HoneypotAccount, count: int,
                                   day_start: int) -> None:
        times = self._request_times(network, count, day_start)
        for when in times:
            self.world.scheduler.at(
                when,
                lambda n=network, h=honeypot: self._submit_comment_request(
                    n, h),
                label=f"comment-req:{network.domain}")

    def _schedule_background(self, network: CollusionNetwork,
                             honeypot: HoneypotAccount, count: int,
                             day_start: int) -> None:
        for _ in range(count):
            when = day_start + self.rng.randrange(DAY - 60)
            self.world.scheduler.at(
                when,
                lambda n=network, h=honeypot:
                    n.use_member_token_for_background(h.account_id, 1),
                label=f"background:{network.domain}")

    def _request_times(self, network: CollusionNetwork, count: int,
                       day_start: int) -> List[int]:
        """Request times honoring the network's inter-request delays."""
        if count <= 0:
            return []
        gate = network.profile.gate
        times: List[int] = []
        cursor = day_start + self.rng.randrange(1, HOUR)
        for _ in range(count):
            times.append(cursor)
            cursor += gate.delay_for(self.rng) + self.rng.randrange(60)
        horizon = day_start + DAY - 60
        return [min(t, horizon) for t in times]

    def _clear_gate(self, network: CollusionNetwork) -> bool:
        """Solve the CAPTCHA / traverse redirects guarding a request."""
        gate = network.profile.gate
        if gate.captcha_required:
            if not self.captcha.solve(self.captcha.solved + 1, self.rng):
                return False
        return True

    def _submit_like_request(self, network: CollusionNetwork,
                             honeypot: HoneypotAccount) -> None:
        if not self._clear_gate(network):
            return
        result = self.results[network.domain]
        post = self.world.platform.create_post(  # reprolint: disable=RL301 — bait posts go up via the honeypot's own first-party session (§4.1); only the collusion network's likes ride app tokens
            honeypot.account_id,
            f"status update #{result.posts_submitted + 1}")
        honeypot.like_post_ids.append(post.post_id)
        report = network.submit_like_request(honeypot.account_id,
                                             post.post_id)
        result.posts_submitted += 1
        result.likes_received += report.delivered
        result.likes_per_post.append(report.delivered)
        likers = self.world.platform.get_post(post.post_id).liker_ids()
        result.unique_accounts.update(likers)
        result.cumulative_unique.append(len(result.unique_accounts))
        shortfall = report.requested - report.delivered
        if shortfall > 0 and report.transient_failures > 0:
            self._schedule_followup(network, honeypot, post.post_id,
                                    result, len(result.likes_per_post) - 1,
                                    shortfall, attempt=1)

    def _schedule_followup(self, network: CollusionNetwork,
                           honeypot: HoneypotAccount, post_id: str,
                           result: NetworkMilkingResult, post_index: int,
                           remaining: int, attempt: int) -> None:
        """Place a top-up delivery on the scheduler with real backoff.

        Unlike the networks' inline retry loops (which cannot advance the
        sim clock mid-event), the milker is itself event-driven, so its
        retries *wait*: each follow-up fires ``backoff_delay`` sim
        seconds later, within the same campaign day.
        """
        policy = self.retry_policy
        now = self.world.clock.now()
        delay = policy.backoff_delay("delivery", post_id, attempt, now)
        self.world.scheduler.at(
            now + delay,
            lambda: self._run_followup(network, honeypot, post_id, result,
                                       post_index, remaining, attempt),
            label=f"followup:{network.domain}")

    def _run_followup(self, network: CollusionNetwork,
                      honeypot: HoneypotAccount, post_id: str,
                      result: NetworkMilkingResult, post_index: int,
                      remaining: int, attempt: int) -> None:
        policy = self.retry_policy
        now = self.world.clock.now()
        if not policy.allow("delivery", now):
            return
        policy.counters["retries"] += 1
        report = network.deliver_followup(honeypot.account_id, post_id,
                                          remaining)
        if report.delivered > 0:
            result.likes_received += report.delivered
            result.likes_per_post[post_index] += report.delivered
            likers = self.world.platform.get_post(post_id).liker_ids()
            result.unique_accounts.update(likers)
        shortfall = remaining - report.delivered
        if shortfall <= 0:
            policy.breaker.record_success("delivery")
            policy.counters["recoveries"] += 1
            return
        if attempt < policy.max_retries and report.transient_failures > 0:
            self._schedule_followup(network, honeypot, post_id, result,
                                    post_index, shortfall, attempt + 1)
            return
        policy.counters["giveups"] += 1
        policy.breaker.record_failure("delivery", now)

    def _submit_comment_request(self, network: CollusionNetwork,
                                honeypot: HoneypotAccount) -> None:
        if not self._clear_gate(network):
            return
        result = self.results[network.domain]
        post = self.world.platform.create_post(  # reprolint: disable=RL301 — comment-bait posts likewise go up via the honeypot's first-party session, not an app token
            honeypot.account_id,
            f"comment bait #{result.comment_posts + 1}")
        honeypot.comment_post_ids.append(post.post_id)
        network.submit_comment_request(honeypot.account_id, post.post_id)
        result.comment_posts += 1
        fetched = self.world.platform.get_post(post.post_id)
        result.comments_received.extend(
            c.text for c in fetched.comments)
        # Commenting accounts feed the ledger via the crawler, but the
        # paper's membership estimate counts only accounts that *like*
        # honeypot posts (S4.1), so they stay out of unique_accounts.

    def _finalize(self) -> None:
        for domain, honeypot in self.honeypots.items():
            self.crawler.crawl_incoming(honeypot)
            self.results[domain].outgoing = self.crawler.crawl_outgoing(
                honeypot)
