"""A Death-by-Captcha-style solving service client (§4: the milking
pipeline is fully automated by outsourcing CAPTCHA solving)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class CaptchaSolvingService:
    """Tracks CAPTCHA-solving usage and cost.

    ``price_per_solve_usd`` defaults to Death by Captcha's contemporary
    rate (~$1.39 per thousand).
    """

    price_per_solve_usd: float = 0.00139
    solved: int = 0
    failed: int = 0
    success_rate: float = 0.995

    def solve(self, challenge_id: int, rng=None) -> bool:
        """Submit a CAPTCHA; returns True when the service solves it."""
        if rng is not None and rng.random() > self.success_rate:
            self.failed += 1
            return False
        self.solved += 1
        return True

    @property
    def total_cost_usd(self) -> float:
        return self.solved * self.price_per_solve_usd
