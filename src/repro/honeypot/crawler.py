"""Crawlers for honeypot timelines and activity logs (§4, "Data
collection": incoming likes/comments from timelines, outgoing activity
from activity logs)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.honeypot.account import HoneypotAccount
from repro.honeypot.ledger import MilkedTokenLedger
from repro.socialnet.post import Like


@dataclass(frozen=True)
class OutgoingActivitySummary:
    """Table 4's "Outgoing Activities" columns for one honeypot."""

    activities: int
    target_accounts: int
    target_pages: int


class TimelineCrawler:
    """Incrementally crawls honeypot posts, feeding the ledger.

    Keeps a per-post cursor so repeated crawls only process new likes —
    the same reason the paper crawled "regularly" rather than once.
    """

    def __init__(self, world, ledger: MilkedTokenLedger) -> None:
        self._world = world
        self._ledger = ledger
        self._like_cursor: Dict[str, int] = {}
        self._comment_cursor: Dict[str, int] = {}

    def crawl_incoming(self, honeypot: HoneypotAccount) -> Tuple[int, int]:
        """Crawl new likes/comments on the honeypot's posts.

        Returns (new likes, new comments) and records each acting account
        in the ledger under the honeypot's network.
        """
        day = self._world.clock.day()
        new_likes = 0
        new_comments = 0
        for post_id in honeypot.like_post_ids + honeypot.comment_post_ids:
            post = self._world.platform.get_post(post_id)
            start = self._like_cursor.get(post_id, 0)
            for like in post.likes[start:]:
                self._ledger.observe(
                    like.liker_id, honeypot.network_domain,
                    like.created_at, day, app_id=like.via_app_id)
                new_likes += 1
            self._like_cursor[post_id] = len(post.likes)
            cstart = self._comment_cursor.get(post_id, 0)
            for comment in post.comments[cstart:]:
                self._ledger.observe(
                    comment.author_id, honeypot.network_domain,
                    comment.created_at, day, app_id=comment.via_app_id)
                new_comments += 1
            self._comment_cursor[post_id] = len(post.comments)
        return new_likes, new_comments

    def likes_of_post(self, post_id: str) -> List[Like]:
        """The (public) likes on one post."""
        return list(self._world.platform.get_post(post_id).likes)

    def crawl_outgoing(self, honeypot: HoneypotAccount) -> OutgoingActivitySummary:
        """Summarize the honeypot's own activity log: actions the network
        performed *with* the honeypot's token."""
        records = self._world.platform.activity_log.for_actor(
            honeypot.account_id)
        accounts: Set[str] = set()
        pages: Set[str] = set()
        activities = 0
        for record in records:
            if record.verb not in ("like", "comment"):
                continue
            if record.target_owner_id == honeypot.account_id:
                continue  # not outgoing manipulation
            activities += 1
            if record.target_kind == "page":
                pages.add(record.target_id)
            else:
                accounts.add(record.target_owner_id)
        return OutgoingActivitySummary(
            activities=activities,
            target_accounts=len(accounts),
            target_pages=len(pages),
        )
