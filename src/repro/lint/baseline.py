"""Grandfathered-findings baseline (``tools/reprolint_baseline.json``).

A baseline entry is the line-number-independent fingerprint of a known
finding — ``(path, rule, stripped source line)`` — with a count, so a
file can grandfather two identical lines.  Findings that match a
baseline entry are *demoted to warnings that never fail*; findings with
no entry fail as usual, and entries that no longer match anything are
reported as stale so the baseline only ever shrinks.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Tuple

from repro.lint.findings import Finding

_VERSION = 1

Key = Tuple[str, str, str]   # (path, rule, snippet)


@dataclass
class Baseline:
    """Counted fingerprints of grandfathered findings."""

    entries: Dict[Key, int] = field(default_factory=dict)

    def budget(self) -> Dict[Key, int]:
        """A mutable copy the engine decrements while matching."""
        return dict(self.entries)

    def __len__(self) -> int:
        return sum(self.entries.values())

    # ------------------------------------------------------------------
    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        entries: Dict[Key, int] = {}
        for finding in findings:
            key = finding.fingerprint()
            entries[key] = entries.get(key, 0) + 1
        return cls(entries=entries)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        if payload.get("version") != _VERSION:
            raise ValueError(
                f"unsupported baseline version {payload.get('version')!r} "
                f"in {path}")
        entries: Dict[Key, int] = {}
        for row in payload.get("findings", []):
            key = (row["path"], row["rule"], row["snippet"])
            entries[key] = entries.get(key, 0) + int(row.get("count", 1))
        return cls(entries=entries)

    def dump(self, path: Path) -> None:
        rows: List[Dict[str, object]] = [
            {"path": key[0], "rule": key[1], "snippet": key[2],
             "count": count}
            for key, count in sorted(self.entries.items())]
        payload = {"version": _VERSION, "findings": rows}
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
