"""The RL001–RL005 rule visitors.

Each rule consumes a :class:`ModuleContext` (parsed tree, source lines,
normalised path, import-alias table, parent map) and yields
:class:`Finding`s.  Name resolution is import-based: ``t.monotonic()``
is flagged only when ``t`` was bound by ``import time as t``, which
keeps local variables that merely *shadow* module names from false-
positiving.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.lint.findings import Finding, Severity

#: Per-rule path prefixes where the rule is intentionally off.  The
#: perf shell measures real wall clock and inherits the caller's
#: environment by design; the experiment runner is the sanctioned home
#: for wall-timing of worker processes.
DEFAULT_ALLOWLIST: Dict[str, Tuple[str, ...]] = {
    "RL001": ("repro/perf/", "repro/experiments/runner.py",
              "repro/telemetry/"),
    "RL004": ("repro/perf/",),
    # The sim package owns the RNG fan-out and the clock representation:
    # constructing streams and bucketing raw ticks is its job.
    "RL201": ("repro/sim/",),
    "RL203": ("repro/sim/",),
    # The factory is where streams are born and wound; the sanitizer
    # package is the instrumentation itself.
    "RL601": ("repro/sim/rng.py", "repro/sanitizer/"),
    "RL602": ("repro/sim/rng.py", "repro/sanitizer/"),
}


@dataclass
class ModuleContext:
    """Everything a rule needs to analyse one module."""

    path: str                       # normalised posix path
    tree: ast.Module
    lines: Sequence[str]            # raw source lines (1-indexed via idx-1)
    aliases: Dict[str, str] = field(default_factory=dict)
    parents: Dict[int, ast.AST] = field(default_factory=dict)
    module_names: frozenset = frozenset()   # module-level defs/assigns
    #: Back-reference to the ProjectGraph, set once per engine run so
    #: per-module rules can consult cross-module facts (summaries,
    #: exception hierarchy).  None when linting a module in isolation.
    project: Optional[object] = None

    @classmethod
    def build(cls, path: str, source: str) -> "ModuleContext":
        tree = ast.parse(source, filename=path)
        aliases: Dict[str, str] = {}
        module_names = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    aliases[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0])
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    if alias.name != "*":
                        aliases[alias.asname or alias.name] = (
                            f"{node.module}.{alias.name}")
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                module_names.add(node.name)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        module_names.add(target.id)
        parents: Dict[int, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                parents[id(child)] = parent
        return cls(path=path, tree=tree, lines=source.splitlines(),
                   aliases=aliases, parents=parents,
                   module_names=frozenset(module_names))

    # ------------------------------------------------------------------
    def resolve(self, node: ast.AST) -> Optional[str]:
        """Dotted origin of a Name/Attribute chain, via the import table.

        ``t.monotonic`` with ``import time as t`` -> ``"time.monotonic"``;
        an unimported base name resolves to ``None``.
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self.aliases.get(node.id)
        if base is None:
            return None
        parts.append(base)
        return ".".join(reversed(parts))

    def snippet(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def finding(self, rule: "Rule", node: ast.AST, message: str,
                hint: Optional[str] = None) -> Finding:
        lineno = getattr(node, "lineno", 1)
        return Finding(path=self.path, line=lineno,
                       col=getattr(node, "col_offset", 0) + 1,
                       rule=rule.rule_id, severity=rule.severity,
                       message=message,
                       hint=rule.hint if hint is None else hint,
                       snippet=self.snippet(lineno))


class Rule:
    """Base class: subclasses set ids/severity and implement ``run``."""

    rule_id: str = "RL000"
    severity: Severity = Severity.ERROR
    description: str = ""
    hint: str = ""

    def run(self, ctx: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError


class ProjectRule(Rule):
    """A rule that needs the whole project graph at once.

    The engine calls :meth:`run_project` exactly once per run, after
    every module has been parsed and the graph linked; ``run`` is never
    invoked for these rules.
    """

    def run(self, ctx: ModuleContext) -> Iterator[Finding]:
        return iter(())

    def run_project(self, graph) -> Iterator[Finding]:
        raise NotImplementedError


# ----------------------------------------------------------------------
# RL001 — wall clock
# ----------------------------------------------------------------------
_WALL_CLOCK = frozenset({
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "time.sleep",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})


class WallClockRule(Rule):
    rule_id = "RL001"
    severity = Severity.ERROR
    description = "wall-clock reads outside the perf shell"
    hint = ("simulation time must come from the SimClock "
            "(world.clock.now()); wall timing belongs in repro/perf/")

    def run(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = ctx.resolve(node.func)
            if dotted in _WALL_CLOCK:
                yield ctx.finding(self, node,
                                  f"wall-clock call {dotted}()")


# ----------------------------------------------------------------------
# RL002 — global / unseeded randomness
# ----------------------------------------------------------------------
_RANDOM_MODULE_FUNCS = frozenset({
    "random", "randint", "randrange", "randbytes", "choice", "choices",
    "shuffle", "sample", "uniform", "seed", "getstate", "setstate",
    "getrandbits", "gauss", "normalvariate", "lognormvariate",
    "expovariate", "vonmisesvariate", "betavariate", "paretovariate",
    "weibullvariate", "triangular", "binomialvariate",
})
_NUMPY_RANDOM_FUNCS = frozenset({
    "seed", "rand", "randn", "randint", "random", "random_sample",
    "choice", "shuffle", "permutation", "uniform", "normal", "bytes",
})


class GlobalRandomRule(Rule):
    rule_id = "RL002"
    severity = Severity.ERROR
    description = "global or unseeded randomness"
    hint = ("draw from a named stream (world.rng.stream(name)) or seed "
            "explicitly: random.Random(derive_seed(master, name))")

    def run(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = ctx.resolve(node.func)
            if dotted is None:
                continue
            if dotted == "random.Random":
                if not node.args and not node.keywords:
                    yield ctx.finding(
                        self, node,
                        "random.Random() without a seed draws from OS "
                        "entropy")
            elif dotted in ("random.SystemRandom", "secrets.SystemRandom"):
                yield ctx.finding(self, node,
                                  f"{dotted} is OS entropy by definition")
            elif (dotted.startswith("random.")
                  and dotted.split(".", 1)[1] in _RANDOM_MODULE_FUNCS):
                yield ctx.finding(
                    self, node,
                    f"module-level {dotted}() uses the shared global "
                    "random state")
            elif dotted.startswith("numpy.random."):
                tail = dotted.split(".", 2)[2]
                if tail in _NUMPY_RANDOM_FUNCS:
                    yield ctx.finding(
                        self, node,
                        f"{dotted}() uses numpy's global random state")
                elif (tail in ("default_rng", "RandomState")
                      and not node.args and not node.keywords):
                    yield ctx.finding(
                        self, node,
                        f"{dotted}() without a seed draws from OS entropy")


# ----------------------------------------------------------------------
# RL003 — nondeterministic ordering
# ----------------------------------------------------------------------
_LISTING_CALLS = frozenset({
    "os.listdir", "os.scandir", "glob.glob", "glob.iglob",
})
_ORDER_CONSUMERS = frozenset({"list", "tuple", "enumerate", "reversed",
                              "iter"})


class OrderingRule(Rule):
    rule_id = "RL003"
    severity = Severity.WARNING
    description = "nondeterministic ordering feeding iteration"
    hint = ("wrap the source in sorted(...) with an explicit key, or "
            "iterate an insertion-ordered structure instead")

    # -- helpers -------------------------------------------------------
    def _is_unordered(self, ctx: ModuleContext, node: ast.AST) -> bool:
        if isinstance(node, ast.Set):
            return True
        if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
                and node.func.id in ("set", "frozenset")
                and node.func.id not in ctx.aliases
                and node.func.id not in ctx.module_names):
            return True
        return False

    def _in_sorted(self, ctx: ModuleContext, node: ast.AST) -> bool:
        parent = ctx.parents.get(id(node))
        return (isinstance(parent, ast.Call)
                and isinstance(parent.func, ast.Name)
                and parent.func.id in ("sorted", "min", "max", "sum",
                                       "len", "any", "all", "set",
                                       "frozenset")
                and node in parent.args)

    def _is_id_key(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Name) and node.id == "id":
            return True
        if isinstance(node, ast.Lambda):
            body = node.body
            return (isinstance(body, ast.Call)
                    and isinstance(body.func, ast.Name)
                    and body.func.id == "id")
        return False

    # -- the pass ------------------------------------------------------
    def run(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            # set literals / set()/frozenset() calls iterated directly
            iters: List[ast.AST] = []
            if isinstance(node, ast.For):
                iters.append(node.iter)
            elif isinstance(node, ast.comprehension):
                iters.append(node.iter)
            elif (isinstance(node, ast.Call)
                  and isinstance(node.func, ast.Name)
                  and node.func.id in _ORDER_CONSUMERS and node.args):
                iters.append(node.args[0])
            elif (isinstance(node, ast.Call)
                  and isinstance(node.func, ast.Attribute)
                  and node.func.attr == "join" and node.args):
                iters.append(node.args[0])
            for candidate in iters:
                if self._is_unordered(ctx, candidate):
                    yield ctx.finding(
                        self, candidate,
                        "iteration over an unordered set perturbs "
                        "downstream order")
            # id()-keyed sorts
            if isinstance(node, ast.Call):
                is_sort = ((isinstance(node.func, ast.Name)
                            and node.func.id == "sorted")
                           or (isinstance(node.func, ast.Attribute)
                               and node.func.attr == "sort"))
                if is_sort:
                    for keyword in node.keywords:
                        if (keyword.arg == "key"
                                and self._is_id_key(keyword.value)):
                            yield ctx.finding(
                                self, node,
                                "sort keyed on id() depends on object "
                                "addresses")
            # unsorted directory listings
            if isinstance(node, ast.Call):
                dotted = ctx.resolve(node.func)
                is_listing = dotted in _LISTING_CALLS or (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "iterdir")
                if is_listing and not self._in_sorted(ctx, node):
                    parent = ctx.parents.get(id(node))
                    if isinstance(parent, (ast.Assign, ast.AnnAssign,
                                           ast.AugAssign, ast.Return)):
                        # Assigned/returned listings are out of scope for
                        # this syntactic pass (no dataflow tracking).
                        continue
                    label = dotted or "Path.iterdir"
                    yield ctx.finding(
                        self, node,
                        f"{label}() order is filesystem-dependent; "
                        "wrap in sorted(...)")


# ----------------------------------------------------------------------
# RL004 — entropy / environment leaks
# ----------------------------------------------------------------------
_ENTROPY_CALLS = frozenset({
    "os.urandom", "os.getrandom", "uuid.uuid1", "uuid.uuid4",
    "os.getenv",
})


class EntropyRule(Rule):
    rule_id = "RL004"
    severity = Severity.ERROR
    description = "entropy or environment leaking into sim state"
    hint = ("derive identifiers from the sim RNG/ids registry and "
            "stable digests (hashlib.blake2b), not process entropy or "
            "the environment")

    def run(self, ctx: ModuleContext) -> Iterator[Finding]:
        hash_shadowed = ("hash" in ctx.aliases
                         or "hash" in ctx.module_names)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                dotted = ctx.resolve(node.func)
                if dotted in _ENTROPY_CALLS:
                    yield ctx.finding(self, node,
                                      f"{dotted}() leaks process "
                                      "entropy/environment into the sim")
                elif dotted is not None and dotted.startswith("secrets."):
                    yield ctx.finding(self, node,
                                      f"{dotted}() is CSPRNG entropy")
                elif (isinstance(node.func, ast.Name)
                      and node.func.id == "hash" and not hash_shadowed):
                    yield ctx.finding(
                        self, node,
                        "builtin hash() is salted per process "
                        "(PYTHONHASHSEED)")
            elif isinstance(node, ast.Attribute):
                if (node.attr == "environ"
                        and ctx.resolve(node) == "os.environ"
                        and isinstance(node.ctx, ast.Load)):
                    yield ctx.finding(
                        self, node,
                        "os.environ read makes sim behaviour depend on "
                        "the caller's environment")


# ----------------------------------------------------------------------
# RL005 — exception discipline
# ----------------------------------------------------------------------
_LOGGING_ATTRS = frozenset({"warn", "warning", "error", "exception",
                            "critical", "debug", "info", "log"})


class ExceptionRule(Rule):
    rule_id = "RL005"
    severity = Severity.WARNING
    description = "broad exception handler that swallows context"
    hint = ("narrow the exception type, re-raise, use the bound "
            "exception, log it, or annotate with "
            "'# reprolint: disable=RL005 — why'")

    def _is_broad(self, ctx: ModuleContext,
                  handler: ast.ExceptHandler) -> Optional[str]:
        if handler.type is None:
            return "bare except:"
        nodes = (handler.type.elts if isinstance(handler.type, ast.Tuple)
                 else [handler.type])
        for node in nodes:
            if isinstance(node, ast.Name) and node.id in ("Exception",
                                                          "BaseException"):
                return f"except {node.id}"
        return None

    def _swallows(self, handler: ast.ExceptHandler) -> bool:
        bound = handler.name
        for node in ast.walk(ast.Module(body=handler.body,
                                        type_ignores=[])):
            if isinstance(node, ast.Raise):
                return False
            if (bound and isinstance(node, ast.Name) and node.id == bound
                    and isinstance(node.ctx, ast.Load)):
                return False
            if isinstance(node, ast.Call):
                func = node.func
                if (isinstance(func, ast.Attribute)
                        and func.attr in _LOGGING_ATTRS):
                    return False
        return True

    def run(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            broad = self._is_broad(ctx, node)
            if broad and self._swallows(node):
                yield ctx.finding(
                    self, node,
                    f"{broad} swallows the exception without re-raise, "
                    "use, or logging")


def default_rules() -> List[Rule]:
    # Imported here, not at module top: taint/contracts import this
    # module for ModuleContext/Rule, so a top-level import would cycle.
    from repro.lint.contracts import (
        ApiContractRule,
        IndirectMutationRule,
        ModuleScopeRngRule,
        StreamSharingRule,
    )
    from repro.lint.sanitizer_rules import sanitizer_rules
    from repro.lint.stateflow import (
        JournalCodecRule,
        ShardDeltaRule,
        SnapshotCoverageRule,
    )
    from repro.lint.taint import SimClockArithmeticRule, TokenTaintRule
    from repro.lint.telemetry_rules import MetricLabelRule

    return [WallClockRule(), GlobalRandomRule(), OrderingRule(),
            EntropyRule(), ExceptionRule(),
            TokenTaintRule(), ModuleScopeRngRule(), StreamSharingRule(),
            SimClockArithmeticRule(), ApiContractRule(),
            IndirectMutationRule(), SnapshotCoverageRule(),
            ShardDeltaRule(), JournalCodecRule(), MetricLabelRule(),
            *sanitizer_rules()]
