"""The reprolint engine: file walking, pragmas, baseline, reporting.

Paths are normalised to posix relative to the scan root's *parent*
(``src/repro`` scans as ``repro/...``), which keeps allowlists and
baseline fingerprints stable across checkouts and installs.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.baseline import Baseline
from repro.lint.findings import Finding, Severity
from repro.lint.rules import (
    DEFAULT_ALLOWLIST,
    ModuleContext,
    Rule,
    default_rules,
)

_PRAGMA = re.compile(
    r"#\s*reprolint:\s*disable(?P<scope>-file)?\s*=\s*"
    r"(?P<rules>all|RL\d+(?:\s*,\s*RL\d+)*)", re.IGNORECASE)


def _parse_pragmas(lines: Sequence[str]) -> Tuple[Dict[int, Set[str]],
                                                  Set[str]]:
    """Return (line -> disabled rule ids, file-wide disabled ids).

    ``all`` disables every rule; trailing justification text after the
    rule list is encouraged and ignored by the parser.
    """
    per_line: Dict[int, Set[str]] = {}
    per_file: Set[str] = set()
    for index, line in enumerate(lines, start=1):
        match = _PRAGMA.search(line)
        if not match:
            continue
        rules = {part.strip().upper()
                 for part in match.group("rules").split(",")}
        if match.group("scope"):
            per_file |= rules
        else:
            per_line.setdefault(index, set()).update(rules)
    return per_line, per_file


def _suppressed(rule_id: str, line: int,
                per_line: Dict[int, Set[str]],
                per_file: Set[str]) -> bool:
    def hit(rules: Set[str]) -> bool:
        return "ALL" in rules or rule_id in rules
    if hit(per_file):
        return True
    rules = per_line.get(line)
    return rules is not None and hit(rules)


@dataclass
class LintReport:
    """Outcome of one engine run."""

    findings: List[Finding] = field(default_factory=list)
    stale_baseline: List[Tuple[str, str, str]] = field(default_factory=list)
    files_scanned: int = 0

    # ------------------------------------------------------------------
    def failing(self, fail_on: Severity) -> List[Finding]:
        """Non-baselined findings at or above the threshold."""
        return [finding for finding in self.findings
                if not finding.baselined and finding.severity >= fail_on]

    def exit_code(self, fail_on: Optional[Severity]) -> int:
        if fail_on is None:
            return 0
        return 1 if self.failing(fail_on) else 0

    def summary(self, fail_on: Optional[Severity]) -> Dict[str, int]:
        return {
            "files": self.files_scanned,
            "findings": len(self.findings),
            "baselined": sum(1 for f in self.findings if f.baselined),
            "failing": (len(self.failing(fail_on))
                        if fail_on is not None else 0),
            "stale_baseline": len(self.stale_baseline),
        }

    def render_text(self, fail_on: Optional[Severity]) -> str:
        parts = [finding.render() for finding in self.findings]
        for path, rule, snippet in self.stale_baseline:
            parts.append(f"stale baseline entry: {path} {rule} "
                         f"({snippet!r} no longer found)")
        stats = self.summary(fail_on)
        parts.append(
            f"reprolint: {stats['files']} files, "
            f"{stats['findings']} findings "
            f"({stats['baselined']} baselined, "
            f"{stats['failing']} failing"
            + (f", {stats['stale_baseline']} stale baseline entries"
               if self.stale_baseline else "") + ")")
        return "\n".join(parts)

    def render_json(self, fail_on: Optional[Severity]) -> str:
        payload = {
            "findings": [finding.to_dict() for finding in self.findings],
            "stale_baseline": [
                {"path": path, "rule": rule, "snippet": snippet}
                for path, rule, snippet in self.stale_baseline],
            "summary": self.summary(fail_on),
            "fail_on": str(fail_on) if fail_on is not None else "never",
        }
        return json.dumps(payload, indent=2, sort_keys=True)


class LintEngine:
    """Run a rule set over files/trees, applying pragmas + baseline."""

    def __init__(self, rules: Optional[Sequence[Rule]] = None,
                 allowlist: Optional[Dict[str, Tuple[str, ...]]] = None
                 ) -> None:
        self.rules = list(rules) if rules is not None else default_rules()
        self.allowlist = (dict(DEFAULT_ALLOWLIST) if allowlist is None
                          else dict(allowlist))

    # ------------------------------------------------------------------
    def _allowlisted(self, rule_id: str, path: str) -> bool:
        return any(path.startswith(prefix)
                   for prefix in self.allowlist.get(rule_id, ()))

    def lint_module(self, path: str, source: str) -> List[Finding]:
        """All findings for one module (pragmas applied, no baseline)."""
        try:
            ctx = ModuleContext.build(path, source)
        except SyntaxError as error:
            return [Finding(path=path, line=error.lineno or 1,
                            col=(error.offset or 0) + 1, rule="RL000",
                            severity=Severity.ERROR,
                            message=f"syntax error: {error.msg}")]
        per_line, per_file = _parse_pragmas(ctx.lines)
        findings: List[Finding] = []
        for rule in self.rules:
            if self._allowlisted(rule.rule_id, path):
                continue
            for finding in rule.run(ctx):
                if _suppressed(finding.rule, finding.line, per_line,
                               per_file):
                    continue
                findings.append(finding)
        findings.sort(key=lambda f: (f.line, f.col, f.rule))
        return findings

    # ------------------------------------------------------------------
    def _collect_files(self, targets: Iterable[Path]
                       ) -> List[Tuple[str, Path]]:
        collected: List[Tuple[str, Path]] = []
        for target in targets:
            target = Path(target)
            if target.is_dir():
                for source in sorted(target.rglob("*.py")):
                    if "__pycache__" in source.parts:
                        continue
                    rel = source.relative_to(target).as_posix()
                    collected.append((f"{target.name}/{rel}", source))
            else:
                collected.append((target.name, target))
        return collected

    def run(self, targets: Iterable[Path],
            baseline: Optional[Baseline] = None) -> LintReport:
        report = LintReport()
        baseline = baseline if baseline is not None else Baseline()
        budget = baseline.budget()
        for path, source_path in self._collect_files(targets):
            report.files_scanned += 1
            source = source_path.read_text(encoding="utf-8")
            for finding in self.lint_module(path, source):
                key = finding.fingerprint()
                if budget.get(key, 0) > 0:
                    budget[key] -= 1
                    finding = finding.as_baselined()
                report.findings.append(finding)
        report.stale_baseline = sorted(
            key for key, remaining in budget.items() if remaining > 0)
        return report


def lint_source(source: str, path: str = "repro/module.py",
                rules: Optional[Sequence[Rule]] = None,
                allowlist: Optional[Dict[str, Tuple[str, ...]]] = None
                ) -> List[Finding]:
    """Convenience for tests: lint one source string."""
    engine = LintEngine(rules=rules,
                        allowlist=allowlist if allowlist is not None
                        else {})
    return engine.lint_module(path, source)


def parse_tree(source: str) -> ast.Module:
    """Parse helper kept for symmetry with :func:`lint_source`."""
    return ast.parse(source)
