"""The reprolint engine: file walking, pragmas, baseline, reporting.

Paths are normalised to posix relative to the scan root's *parent*
(``src/repro`` scans as ``repro/...``), which keeps allowlists and
baseline fingerprints stable across checkouts and installs.

Since v2 the engine is project-aware: every module that parses is
indexed into a :class:`~repro.lint.graph.ProjectGraph` (symbol table,
import/call graph, one-level function summaries) before any rule runs,
so per-module rules can consult cross-module facts and
:class:`~repro.lint.rules.ProjectRule` subclasses run once over the
whole graph.  Files that fail to parse (or read) become ``RL000``
findings instead of aborting the run.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.baseline import Baseline
from repro.lint.findings import Finding, Severity
from repro.lint.rules import (
    DEFAULT_ALLOWLIST,
    ModuleContext,
    ProjectRule,
    Rule,
    default_rules,
)

_PRAGMA = re.compile(
    r"#\s*reprolint:\s*disable(?P<scope>-file)?\s*=\s*"
    r"(?P<rules>all|RL\d+(?:\s*,\s*RL\d+)*)", re.IGNORECASE)

#: (line -> disabled rule ids, file-wide disabled ids)
Pragmas = Tuple[Dict[int, Set[str]], Set[str]]


def parse_pragmas(lines: Sequence[str]) -> Pragmas:
    """Return (line -> disabled rule ids, file-wide disabled ids).

    ``all`` disables every rule; trailing justification text after the
    rule list is encouraged and ignored by the parser.
    """
    per_line: Dict[int, Set[str]] = {}
    per_file: Set[str] = set()
    for index, line in enumerate(lines, start=1):
        match = _PRAGMA.search(line)
        if not match:
            continue
        rules = {part.strip().upper()
                 for part in match.group("rules").split(",")}
        if match.group("scope"):
            per_file |= rules
        else:
            per_line.setdefault(index, set()).update(rules)
    return per_line, per_file


#: Backwards-compatible alias (pre-v2 private name).
_parse_pragmas = parse_pragmas


def _suppressed(rule_id: str, line: int,
                per_line: Dict[int, Set[str]],
                per_file: Set[str]) -> bool:
    def hit(rules: Set[str]) -> bool:
        return "ALL" in rules or rule_id in rules
    if hit(per_file):
        return True
    rules = per_line.get(line)
    return rules is not None and hit(rules)


def _parse_error_finding(path: str, error: SyntaxError) -> Finding:
    return Finding(path=path, line=error.lineno or 1,
                   col=(error.offset or 0) + 1, rule="RL000",
                   severity=Severity.ERROR,
                   message=f"syntax error: {error.msg}",
                   hint="fix the parse error; unparsable files are "
                        "invisible to every other rule")


@dataclass
class LintReport:
    """Outcome of one engine run."""

    findings: List[Finding] = field(default_factory=list)
    stale_baseline: List[Tuple[str, str, str]] = field(default_factory=list)
    files_scanned: int = 0
    #: fingerprint -> how many current findings it absorbed (the live
    #: subset of the baseline; --prune-baseline rewrites from this)
    baseline_matched: Dict[Tuple[str, str, str], int] = field(
        default_factory=dict)
    #: this run's parse-cache counters (stat_hits / content_hits /
    #: misses), surfaced in ``--json`` output
    cache_stats: Dict[str, int] = field(default_factory=dict)
    #: findings silenced by an in-source ``reprolint: disable`` pragma;
    #: never failing, but carried into SARIF as inSource suppressions
    suppressed: List[Finding] = field(default_factory=list)

    # ------------------------------------------------------------------
    def failing(self, fail_on: Severity) -> List[Finding]:
        """Non-baselined findings at or above the threshold."""
        return [finding for finding in self.findings
                if not finding.baselined and finding.severity >= fail_on]

    def exit_code(self, fail_on: Optional[Severity]) -> int:
        if fail_on is None:
            return 0
        return 1 if self.failing(fail_on) else 0

    def summary(self, fail_on: Optional[Severity]) -> Dict[str, int]:
        return {
            "files": self.files_scanned,
            "findings": len(self.findings),
            "baselined": sum(1 for f in self.findings if f.baselined),
            "failing": (len(self.failing(fail_on))
                        if fail_on is not None else 0),
            "stale_baseline": len(self.stale_baseline),
        }

    def render_text(self, fail_on: Optional[Severity]) -> str:
        parts = [finding.render() for finding in self.findings]
        for path, rule, snippet in self.stale_baseline:
            parts.append(f"stale baseline entry: {path} {rule} "
                         f"({snippet!r} no longer found)")
        stats = self.summary(fail_on)
        parts.append(
            f"reprolint: {stats['files']} files, "
            f"{stats['findings']} findings "
            f"({stats['baselined']} baselined, "
            f"{stats['failing']} failing"
            + (f", {stats['stale_baseline']} stale baseline entries"
               if self.stale_baseline else "") + ")")
        return "\n".join(parts)

    def render_json(self, fail_on: Optional[Severity]) -> str:
        payload = {
            "findings": [finding.to_dict() for finding in self.findings],
            "stale_baseline": [
                {"path": path, "rule": rule, "snippet": snippet}
                for path, rule, snippet in self.stale_baseline],
            "summary": self.summary(fail_on),
            "parse_cache": dict(self.cache_stats),
            "fail_on": str(fail_on) if fail_on is not None else "never",
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    def render_sarif(self) -> str:
        from repro.lint.sarif import render_sarif

        return render_sarif(self)


class LintEngine:
    """Run a rule set over files/trees, applying pragmas + baseline."""

    def __init__(self, rules: Optional[Sequence[Rule]] = None,
                 allowlist: Optional[Dict[str, Tuple[str, ...]]] = None
                 ) -> None:
        self.rules = list(rules) if rules is not None else default_rules()
        self.allowlist = (dict(DEFAULT_ALLOWLIST) if allowlist is None
                          else dict(allowlist))

    # ------------------------------------------------------------------
    def _allowlisted(self, rule_id: str, path: str) -> bool:
        return any(path.startswith(prefix)
                   for prefix in self.allowlist.get(rule_id, ()))

    # ------------------------------------------------------------------
    # Core: contexts -> findings
    # ------------------------------------------------------------------
    def _run_contexts(self, contexts: Sequence[ModuleContext],
                      pragma_map: Dict[str, Pragmas]
                      ) -> Tuple[List[Finding], List[Finding]]:
        """Build the project graph, run every rule, filter and sort.

        Returns ``(kept, suppressed)`` — pragma-silenced findings are
        kept aside so SARIF can record them as inSource suppressions.
        """
        from repro.lint.graph import ProjectGraph

        graph = ProjectGraph.build(contexts)
        raw: List[Finding] = []
        module_rules = [rule for rule in self.rules
                        if not isinstance(rule, ProjectRule)]
        project_rules = [rule for rule in self.rules
                         if isinstance(rule, ProjectRule)]
        for ctx in contexts:
            for rule in module_rules:
                raw.extend(rule.run(ctx))
        for rule in project_rules:
            raw.extend(rule.run_project(graph))
        kept: List[Finding] = []
        suppressed: List[Finding] = []
        for finding in raw:
            if self._allowlisted(finding.rule, finding.path):
                continue
            pragmas = pragma_map.get(finding.path)
            if pragmas is not None and _suppressed(
                    finding.rule, finding.line, *pragmas):
                suppressed.append(finding)
                continue
            kept.append(finding)
        order = lambda f: (f.path, f.line, f.col, f.rule)  # noqa: E731
        kept.sort(key=order)
        suppressed.sort(key=order)
        return kept, suppressed

    def lint_module(self, path: str, source: str) -> List[Finding]:
        """All findings for one module (pragmas applied, no baseline)."""
        try:
            ctx = ModuleContext.build(path, source)
        except SyntaxError as error:
            return [_parse_error_finding(path, error)]
        pragmas = parse_pragmas(ctx.lines)
        kept, _suppressed_findings = self._run_contexts(
            [ctx], {path: pragmas})
        return kept

    # ------------------------------------------------------------------
    # File collection
    # ------------------------------------------------------------------
    @staticmethod
    def _display_path(source: Path) -> str:
        """Normalised path for a single-file target: anchored at the
        last ``repro`` component when present (matches tree scans)."""
        parts = source.as_posix().split("/")
        if "repro" in parts:
            index = len(parts) - 1 - parts[::-1].index("repro")
            return "/".join(parts[index:])
        return source.name

    def _collect_files(self, targets: Iterable[Path]
                       ) -> List[Tuple[str, Path]]:
        collected: List[Tuple[str, Path]] = []
        for target in targets:
            target = Path(target)
            if target.is_dir():
                for source in sorted(target.rglob("*.py")):
                    if "__pycache__" in source.parts:
                        continue
                    rel = source.relative_to(target).as_posix()
                    collected.append((f"{target.name}/{rel}", source))
            else:
                collected.append((self._display_path(target), target))
        return collected

    # ------------------------------------------------------------------
    # Runs
    # ------------------------------------------------------------------
    def run(self, targets: Iterable[Path],
            baseline: Optional[Baseline] = None) -> LintReport:
        return self.run_files(self._collect_files(targets), baseline)

    def run_files(self, pairs: Sequence[Tuple[str, Path]],
                  baseline: Optional[Baseline] = None) -> LintReport:
        """Lint explicit (display path, file) pairs as one project."""
        from repro.lint.graph import CACHE_STATS, cached_parse

        report = LintReport()
        stats_before = dict(CACHE_STATS)
        baseline = baseline if baseline is not None else Baseline()
        budget = baseline.budget()
        contexts: List[ModuleContext] = []
        pragma_map: Dict[str, Pragmas] = {}
        findings: List[Finding] = []
        for path, source_path in pairs:
            report.files_scanned += 1
            try:
                source = source_path.read_text(encoding="utf-8")
            except (OSError, UnicodeDecodeError) as error:
                findings.append(Finding(
                    path=path, line=1, col=1, rule="RL000",
                    severity=Severity.ERROR,
                    message=f"unreadable file: {error}"))
                continue
            try:
                ctx, pragmas = cached_parse(path, source_path, source)
            except SyntaxError as error:
                findings.append(_parse_error_finding(path, error))
                continue
            contexts.append(ctx)
            pragma_map[path] = pragmas
        report.cache_stats = {
            key: CACHE_STATS[key] - stats_before[key]
            for key in CACHE_STATS}
        kept, report.suppressed = self._run_contexts(contexts,
                                                     pragma_map)
        findings.extend(kept)
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        for finding in findings:
            key = finding.fingerprint()
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                finding = finding.as_baselined()
                report.baseline_matched[key] = (
                    report.baseline_matched.get(key, 0) + 1)
            report.findings.append(finding)
        report.stale_baseline = sorted(
            key for key, remaining in budget.items() if remaining > 0)
        return report


def lint_source(source: str, path: str = "repro/module.py",
                rules: Optional[Sequence[Rule]] = None,
                allowlist: Optional[Dict[str, Tuple[str, ...]]] = None
                ) -> List[Finding]:
    """Convenience for tests: lint one source string."""
    engine = LintEngine(rules=rules,
                        allowlist=allowlist if allowlist is not None
                        else {})
    return engine.lint_module(path, source)


def parse_tree(source: str) -> ast.Module:
    """Parse helper kept for symmetry with :func:`lint_source`."""
    return ast.parse(source)
