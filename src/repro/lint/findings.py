"""Finding and severity primitives shared by the rule engine."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Tuple


class Severity(enum.IntEnum):
    """Ordered severities; ``--fail-on`` compares against this order."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:
        return self.name.lower()

    @classmethod
    def parse(cls, name: str) -> "Severity":
        try:
            return cls[name.upper()]
        except KeyError:
            raise ValueError(f"unknown severity {name!r}; expected one of "
                             f"{[str(s) for s in cls]}") from None


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location.

    ``path`` is normalised (posix, relative to the scan root's parent)
    so baselines and allowlists are stable across checkouts.  The
    ``snippet`` — the stripped source line — is what baselines match
    on, so a finding survives unrelated line-number drift.
    """

    path: str
    line: int
    col: int
    rule: str
    severity: Severity
    message: str
    hint: str = ""
    snippet: str = ""
    baselined: bool = field(default=False, compare=False)

    def fingerprint(self) -> Tuple[str, str, str]:
        return (self.path, self.rule, self.snippet)

    def as_baselined(self) -> "Finding":
        return replace(self, baselined=True)

    def render(self) -> str:
        flag = " [baselined]" if self.baselined else ""
        text = (f"{self.path}:{self.line}:{self.col}: {self.rule} "
                f"{self.severity}{flag}: {self.message}")
        if self.hint:
            text += f"\n    hint: {self.hint}"
        if self.snippet:
            text += f"\n    >>> {self.snippet}"
        return text

    def to_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "severity": str(self.severity),
            "message": self.message,
            "hint": self.hint,
            "snippet": self.snippet,
            "baselined": self.baselined,
        }
