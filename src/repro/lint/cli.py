"""Command-line front end: ``repro lint`` / ``python -m repro.lint``.

Exit codes: 0 clean (or everything baselined), 1 failing findings at or
above ``--fail-on``, 2 usage errors (bad baseline file, missing target).
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import List, Optional

from repro.lint.baseline import Baseline
from repro.lint.engine import LintEngine
from repro.lint.findings import Severity

DEFAULT_BASELINE = os.path.join("tools", "reprolint_baseline.json")


def add_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="files or directories to lint (default: src/repro under "
             "the current directory, else the installed repro package)")
    parser.add_argument(
        "--baseline", type=Path, default=None,
        help=f"baseline JSON of grandfathered findings (default: "
             f"{DEFAULT_BASELINE} when present)")
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file")
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="write the current findings as the new baseline and exit 0")
    parser.add_argument(
        "--fail-on", choices=["error", "warning", "info", "never"],
        default="warning",
        help="lowest severity that makes the run fail (default: warning)")
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit machine-readable JSON instead of text")
    parser.add_argument(
        "--out", type=str, default=None,
        help="also write the report to this file")


def _default_targets() -> List[Path]:
    local = Path("src") / "repro"
    if local.is_dir():
        return [local]
    import repro

    return [Path(repro.__file__).resolve().parent]


def _resolve_baseline(args: argparse.Namespace) -> Optional[Baseline]:
    if args.no_baseline:
        return None
    if args.baseline is not None:
        return Baseline.load(args.baseline)
    default = Path(DEFAULT_BASELINE)
    if default.is_file():
        return Baseline.load(default)
    return None


def run(args: argparse.Namespace) -> int:
    targets = list(args.paths) or _default_targets()
    for target in targets:
        if not target.exists():
            print(f"error: no such path: {target}", file=sys.stderr)
            return 2
    if args.write_baseline:
        baseline = None          # never load what we are about to write
    else:
        try:
            baseline = _resolve_baseline(args)
        except (OSError, ValueError, KeyError) as error:
            print(f"error: cannot load baseline: {error}", file=sys.stderr)
            return 2
    engine = LintEngine()
    report = engine.run(targets, baseline=baseline)

    if args.write_baseline:
        path = args.baseline or Path(DEFAULT_BASELINE)
        path.parent.mkdir(parents=True, exist_ok=True)
        Baseline.from_findings(report.findings).dump(path)
        print(f"wrote {len(report.findings)} baseline entries to {path}")
        return 0

    fail_on = (None if args.fail_on == "never"
               else Severity.parse(args.fail_on))
    text = (report.render_json(fail_on) if args.as_json
            else report.render_text(fail_on))
    print(text)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    return report.exit_code(fail_on)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="reprolint: determinism & discipline static analysis")
    add_arguments(parser)
    return run(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
