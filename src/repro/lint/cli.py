"""Command-line front end: ``repro lint`` / ``python -m repro.lint``.

Exit codes: 0 clean (or everything baselined), 1 failing findings at or
above ``--fail-on``, 2 usage errors (bad baseline file, missing target,
not a git checkout with ``--changed``).
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
from pathlib import Path
from typing import List, Optional, Tuple

from repro.lint.baseline import Baseline
from repro.lint.engine import LintEngine
from repro.lint.findings import Severity

DEFAULT_BASELINE = os.path.join("tools", "reprolint_baseline.json")


def add_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="files or directories to lint (default: src/repro under "
             "the current directory, else the installed repro package)")
    parser.add_argument(
        "--baseline", type=Path, default=None,
        help=f"baseline JSON of grandfathered findings (default: "
             f"{DEFAULT_BASELINE} when present)")
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file")
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="write the current findings as the new baseline and exit 0")
    parser.add_argument(
        "--prune-baseline", action="store_true",
        help="rewrite the baseline keeping only entries that still "
             "match a finding, then exit 0")
    parser.add_argument(
        "--changed", nargs="?", const="HEAD", default=None,
        metavar="REF",
        help="lint only files modified vs. a git ref (default ref: "
             "HEAD); untracked .py files are included")
    parser.add_argument(
        "--fail-on", choices=["error", "warning", "info", "never"],
        default="warning",
        help="lowest severity that makes the run fail (default: warning)")
    parser.add_argument(
        "--format", choices=["text", "json", "sarif"], default=None,
        dest="fmt",
        help="report format (default: text)")
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="shorthand for --format json")
    parser.add_argument(
        "--out", type=str, default=None,
        help="also write the report to this file")


def _default_targets() -> List[Path]:
    local = Path("src") / "repro"
    if local.is_dir():
        return [local]
    import repro

    return [Path(repro.__file__).resolve().parent]


def _resolve_baseline(args: argparse.Namespace) -> Optional[Baseline]:
    if args.no_baseline:
        return None
    if args.baseline is not None:
        return Baseline.load(args.baseline)
    default = Path(DEFAULT_BASELINE)
    if default.is_file():
        return Baseline.load(default)
    return None


def _git_lines(argv: List[str]) -> List[str]:
    proc = subprocess.run(argv, capture_output=True, text=True,
                          check=True)
    return [line for line in proc.stdout.split("\0") if line]


def _changed_pairs(ref: str, targets: List[Path],
                   engine: LintEngine) -> List[Tuple[str, Path]]:
    """(display path, file) pairs for files modified vs. ``ref`` that
    fall under one of the lint targets.  Raises CalledProcessError /
    FileNotFoundError when git is unusable."""
    # Anchor everything at the repo toplevel: ``git diff`` reports
    # toplevel-relative names while ``git ls-files`` is cwd-relative,
    # so both listings run from the toplevel to agree.
    toplevel = Path(subprocess.run(
        ["git", "rev-parse", "--show-toplevel"], capture_output=True,
        text=True, check=True).stdout.strip())
    git = ["git", "-C", str(toplevel)]
    # --diff-filter=d drops deletions at the source (a rename's old
    # name counts as one), so they never surface as RL000 noise.
    names = _git_lines(git + ["diff", "--name-only", "--diff-filter=d",
                              "-z", ref, "--"])
    names += _git_lines(git + ["ls-files", "--others",
                               "--exclude-standard", "-z"])
    resolved_targets = [target.resolve() for target in targets]
    pairs: List[Tuple[str, Path]] = []
    seen = set()
    for name in sorted(set(names)):
        if not name.endswith(".py"):
            continue
        source = toplevel / name
        if not source.is_file():
            continue        # renamed away mid-scan, or a racing delete
        absolute = source.resolve()
        in_scope = any(
            target == absolute or target in absolute.parents
            for target in resolved_targets)
        if not in_scope or absolute in seen:
            continue
        seen.add(absolute)
        pairs.append((engine._display_path(source), source))
    return pairs


def run(args: argparse.Namespace) -> int:
    targets = list(args.paths) or _default_targets()
    for target in targets:
        if not target.exists():
            print(f"error: no such path: {target}", file=sys.stderr)
            return 2
    if args.write_baseline:
        baseline = None          # never load what we are about to write
    else:
        try:
            baseline = _resolve_baseline(args)
        except (OSError, ValueError, KeyError) as error:
            print(f"error: cannot load baseline: {error}", file=sys.stderr)
            return 2
    if args.prune_baseline and args.changed is not None:
        print("error: --prune-baseline needs a full scan; drop "
              "--changed", file=sys.stderr)
        return 2
    if args.prune_baseline and baseline is None:
        print("error: --prune-baseline needs a baseline file "
              f"(looked for {args.baseline or DEFAULT_BASELINE})",
              file=sys.stderr)
        return 2

    engine = LintEngine()
    if args.changed is not None:
        try:
            pairs = _changed_pairs(args.changed, targets, engine)
        except (subprocess.CalledProcessError,
                FileNotFoundError) as error:
            detail = getattr(error, "stderr", "") or str(error)
            print(f"error: --changed needs a git checkout: "
                  f"{detail.strip()}", file=sys.stderr)
            return 2
        report = engine.run_files(pairs, baseline=baseline)
    else:
        report = engine.run(targets, baseline=baseline)

    if args.write_baseline:
        path = args.baseline or Path(DEFAULT_BASELINE)
        path.parent.mkdir(parents=True, exist_ok=True)
        Baseline.from_findings(report.findings).dump(path)
        print(f"wrote {len(report.findings)} baseline entries to {path}")
        return 0

    if args.prune_baseline:
        path = (args.baseline if args.baseline is not None
                else Path(DEFAULT_BASELINE))
        before = len(baseline)
        pruned = Baseline(entries=dict(report.baseline_matched))
        pruned.dump(path)
        print(f"pruned baseline {path}: kept {len(pruned)} of "
              f"{before} entries "
              f"({len(report.stale_baseline)} stale fingerprints "
              "dropped)")
        return 0

    fail_on = (None if args.fail_on == "never"
               else Severity.parse(args.fail_on))
    fmt = args.fmt or ("json" if args.as_json else "text")
    if fmt == "sarif":
        text = report.render_sarif()
    elif fmt == "json":
        text = report.render_json(fail_on)
    else:
        text = report.render_text(fail_on)
    print(text)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    return report.exit_code(fail_on)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="reprolint: determinism & discipline static analysis")
    add_arguments(parser)
    return run(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
