"""Interprocedural fixpoint over the project call graph.

``repro.lint.summaries`` used to be strictly one-level: every function
was summarised against an *empty* table, so a helper-of-a-helper never
propagated taint and the RL1xx/RL3xx families went blind past one hop.
This module replaces that with a classic bottom-up fixpoint:

1. The call graph (``ProjectGraph.calls``) is condensed into strongly
   connected components (iterative Tarjan, deterministic order).
   Tarjan emits SCCs in reverse topological order — callees first —
   so by the time a caller is summarised its callees' summaries are
   already final.
2. Within an SCC (mutual recursion) members are re-summarised until
   nothing changes.  Every summary fact is a set that only ever grows
   under re-evaluation, so the iteration is monotone and terminates.

On top of the existing taint facts the fixpoint computes a
**mutation-effect lattice** — which ``self.X`` attributes and which
module-level names each function writes, directly or through any
callee chain — and a ``returns_taint`` bit (the return value carries a
token sourced *inside* the body, not just passed through).  The RL4xx
state-coverage rules (``repro.lint.stateflow``) are built on these
effects.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.lint.taint import (
    TOKEN_PARAM_NAMES,
    TaintWalker,
    TokenTaintSpec,
    attr_chain,
)

#: Methods that mutate their receiver in place.  A call
#: ``self.X.append(...)`` is a write to the state held in ``self.X``.
MUTATOR_METHODS = frozenset({
    "append", "appendleft", "add", "discard", "remove", "pop",
    "popleft", "popitem", "clear", "update", "extend", "insert",
    "setdefault", "sort", "reverse",
})

#: Callees under these path prefixes never donate ``mutates_platform``
#: to their callers: the Graph API *is* the sanctioned route to the
#: platform, so calling it must not read as an indirect raw write.
_SANCTIONED_MUTATION_PATHS = ("repro/graphapi/",)


# ----------------------------------------------------------------------
# Direct mutation effects of one function body
# ----------------------------------------------------------------------
def _strip_subscripts(node: ast.AST) -> ast.AST:
    while isinstance(node, ast.Subscript):
        node = node.value
    return node


def _self_attr(node: ast.AST) -> Optional[str]:
    """Attribute name if ``node`` is rooted at ``self`` (any depth)."""
    chain = attr_chain(_strip_subscripts(node))
    if len(chain) >= 2 and chain[0] == "self":
        return chain[1]
    return None


def _flatten_targets(target: ast.AST) -> Iterable[ast.AST]:
    if isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _flatten_targets(element)
    else:
        yield target


def direct_effects(fn_node: ast.AST,
                   module_names: FrozenSet[str]
                   ) -> Tuple[Set[str], Set[str]]:
    """``(self_writes, global_writes)`` performed directly by a body.

    Tracks plain/aug/ann assignments and ``del`` on ``self.X`` (with
    any subscript or attribute nesting), in-place mutator calls
    (``self.X.append(...)``), ``global``-declared rebinding, and
    mutator calls on module-level names.  Writes through a local alias
    (``ref = self.X; ref.y = 1``) are out of scope — the one
    documented hole, shared with every summary fact here.
    """
    self_writes: Set[str] = set()
    global_writes: Set[str] = set()
    declared_global: Set[str] = set()
    for node in ast.walk(fn_node):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
    for node in ast.walk(fn_node):
        targets: List[ast.AST] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        elif isinstance(node, ast.Delete):
            targets = list(node.targets)
        for target in targets:
            for leaf in _flatten_targets(target):
                attr = _self_attr(leaf)
                if attr is not None:
                    self_writes.add(attr)
                    continue
                stripped = _strip_subscripts(leaf)
                if isinstance(stripped, ast.Name):
                    name = stripped.id
                    if name in declared_global or (
                            not isinstance(leaf, ast.Name)
                            and name in module_names):
                        # ``global x; x = ...`` or a subscript store
                        # into a module-level container.
                        global_writes.add(name)
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in MUTATOR_METHODS):
            base = node.func.value
            attr = _self_attr(base)
            if attr is not None:
                self_writes.add(attr)
            else:
                stripped = _strip_subscripts(base)
                if (isinstance(stripped, ast.Name)
                        and stripped.id in module_names):
                    global_writes.add(stripped.id)
    return self_writes, global_writes


def module_level_names(tree: ast.Module) -> FrozenSet[str]:
    """Names bound by assignment at a module's top level."""
    names: Set[str] = set()
    for stmt in tree.body:
        targets: List[ast.AST] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, ast.AnnAssign):
            targets = [stmt.target]
        for target in targets:
            for leaf in _flatten_targets(target):
                if isinstance(leaf, ast.Name):
                    names.add(leaf.id)
    return frozenset(names)


# ----------------------------------------------------------------------
# SCC condensation (iterative Tarjan, deterministic)
# ----------------------------------------------------------------------
def strongly_connected_components(
        nodes: List[str],
        edges: Dict[str, List[str]]) -> List[List[str]]:
    """Tarjan SCCs, emitted callees-first (reverse topological).

    Both ``nodes`` and each adjacency list must be pre-sorted; the
    result is then fully deterministic.  Iterative so a thousand-deep
    helper chain cannot hit the recursion limit.
    """
    index: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    components: List[List[str]] = []
    counter = 0
    for root in nodes:
        if root in index:
            continue
        index[root] = low[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        work: List[Tuple[str, Iterable[str]]] = [
            (root, iter(edges.get(root, ())))]
        while work:
            node, children = work[-1]
            advanced = False
            for child in children:
                if child not in index:
                    index[child] = low[child] = counter
                    counter += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, iter(edges.get(child, ()))))
                    advanced = True
                    break
                if child in on_stack:
                    low[node] = min(low[node], index[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
    return components


# ----------------------------------------------------------------------
# Summarising one function against the current (partial) table
# ----------------------------------------------------------------------
def summarise_function(graph, fn, module_names: FrozenSet[str]):
    """One function's summary, reading ``graph.summaries`` as-is.

    During the fixpoint the table is partial (SCC members mid-flight);
    every fact is re-derived from scratch each round, so a stale read
    only delays convergence, never corrupts it.
    """
    from repro.lint.summaries import (
        FunctionSummary,
        platform_mutation_calls,
    )

    info = graph.by_path.get(fn.path)
    summary = FunctionSummary(qname=fn.qname, params=list(fn.params))
    if info is None:
        return summary
    spec = TokenTaintSpec()
    initial = {param: {param} for param in fn.params}
    walker = TaintWalker(info.ctx, spec, initial)
    walker._function = fn
    walker.walk(fn.node.body)
    for _node, kind, origins in walker.sink_hits:
        base_kind = kind.split(":", 1)[0]
        for origin in origins:
            if origin in fn.params and origin not in TOKEN_PARAM_NAMES:
                summary.param_sink_flows.setdefault(
                    origin, set()).add(base_kind)
    summary.taint_through = {
        origin for origin in walker.return_origins
        if origin in fn.params
    }
    summary.returns_taint = TaintWalker.GENERIC in walker.return_origins
    summary.mutates_platform = {
        call.func.attr for call in platform_mutation_calls(fn.node)
    }
    self_writes, global_writes = direct_effects(fn.node, module_names)
    summary.self_writes = self_writes
    summary.global_writes = global_writes
    # Effect inheritance through resolved call sites.  The call-site
    # *form* matters: only a literal ``self.method(...)`` lands the
    # callee's attribute writes on this instance — constructing a
    # sibling of one's own class (``RngFactory(...)`` inside
    # ``child()``) resolves to the same-class ``__init__`` but writes
    # a different object.
    for node in ast.walk(fn.node):
        if not isinstance(node, ast.Call):
            continue
        callee_fn = graph.resolve_call(info, fn, node)
        if callee_fn is None:
            continue
        callee = graph.summaries.get(callee_fn.qname)
        if callee is None:
            continue
        summary.global_writes |= callee.global_writes
        if not callee_fn.path.startswith(_SANCTIONED_MUTATION_PATHS):
            summary.mutates_platform |= callee.mutates_platform
        if (isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "self"
                and callee_fn.cls == fn.cls
                and callee_fn.module == fn.module):
            summary.self_writes |= callee.self_writes
    return summary


def _summary_key(summary) -> Optional[Tuple]:
    if summary is None:
        return None
    return (
        tuple(sorted((param, tuple(sorted(kinds)))
                     for param, kinds in summary.param_sink_flows.items())),
        tuple(sorted(summary.taint_through)),
        tuple(sorted(summary.mutates_platform)),
        tuple(sorted(summary.self_writes)),
        tuple(sorted(summary.global_writes)),
        summary.returns_taint,
    )


# ----------------------------------------------------------------------
# The fixpoint driver
# ----------------------------------------------------------------------
#: Per-SCC iteration cap.  Convergence is guaranteed by monotonicity;
#: the cap is a belt against a future non-monotone fact sneaking in.
MAX_ROUNDS = 32


def build_summaries(graph) -> None:
    """Populate ``graph.summaries`` to interprocedural convergence."""
    graph.summaries = {}
    names_by_path: Dict[str, FrozenSet[str]] = {}
    for info in graph.by_path.values():
        names_by_path[info.path] = module_level_names(info.ctx.tree)
    nodes = sorted(graph.functions)
    edges = {
        qname: sorted(callee for callee in graph.calls.get(qname, ())
                      if callee in graph.functions)
        for qname in nodes
    }
    for component in strongly_connected_components(nodes, edges):
        members = sorted(component)
        self_recursive = (len(members) > 1
                          or members[0] in edges.get(members[0], ()))
        for _round in range(MAX_ROUNDS):
            changed = False
            for qname in members:
                fn = graph.functions[qname]
                summary = summarise_function(
                    graph, fn, names_by_path.get(fn.path, frozenset()))
                if _summary_key(summary) != _summary_key(
                        graph.summaries.get(qname)):
                    graph.summaries[qname] = summary
                    changed = True
            if not changed or not self_recursive:
                break
