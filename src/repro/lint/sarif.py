"""SARIF 2.1.0 rendering for lint reports.

Emits the minimal static-analysis interchange document GitHub code
scanning and most SARIF viewers accept: one run, one driver, rule
descriptors for every rule id that produced a finding, and one result
per finding.  Baselined findings are kept in the document but carry an
``external`` suppression so viewers show them as accepted; findings
silenced by an in-source ``reprolint: disable`` pragma are appended
with an ``inSource`` suppression, so the justified exceptions stay
visible to code-scanning dashboards instead of vanishing.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List

from repro.lint.findings import Finding, Severity

_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}

#: Short descriptions for every shipped rule id (TokenTaintRule emits
#: three ids from one rule object, so this table is id-keyed rather
#: than derived from rule classes).
RULE_DESCRIPTIONS: Dict[str, str] = {
    "RL000": "file failed to parse",
    "RL001": "wall-clock reads outside the perf shell",
    "RL002": "global or unseeded randomness",
    "RL003": "nondeterministic ordering feeding iteration",
    "RL004": "entropy or environment leaking into sim state",
    "RL005": "broad exception handler that swallows context",
    "RL101": "token value flows into a logging sink",
    "RL102": "token value flows into an exception message",
    "RL103": "token value persisted to an experiment artifact",
    "RL201": "RNG stream constructed at module scope",
    "RL202": "RNG stream shared across entities",
    "RL203": "raw arithmetic on sim-clock values outside sim/",
    "RL301": "direct platform mutation bypassing the Graph API",
    "RL302": "platform mutation reached through an outside helper",
    "RL401": "mutable state missing from a snapshot capture/install",
    "RL402": "shard delta field dropped or impure forked child",
    "RL403": "journal frame bypasses the approved codec",
}


def _fingerprint(finding: Finding) -> str:
    raw = "\x1f".join(finding.fingerprint())
    return hashlib.blake2b(raw.encode("utf-8"),
                           digest_size=8).hexdigest()


def _result(finding: Finding, in_source: bool = False) -> dict:
    text = finding.message
    if finding.hint:
        text = f"{text}. {finding.hint}"
    result = {
        "ruleId": finding.rule,
        "level": _LEVELS.get(finding.severity, "warning"),
        "message": {"text": text},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {"uri": finding.path},
                "region": {
                    "startLine": finding.line,
                    "startColumn": max(finding.col, 1),
                },
            },
        }],
        "partialFingerprints": {
            "reprolintFingerprint/v1": _fingerprint(finding),
        },
    }
    if in_source:
        result["suppressions"] = [{
            "kind": "inSource",
            "justification": "reprolint: disable pragma"}]
    elif finding.baselined:
        result["suppressions"] = [{"kind": "external",
                                   "justification": "baselined"}]
    return result


def render_sarif(report) -> str:
    """Serialise a :class:`~repro.lint.engine.LintReport` as SARIF."""
    suppressed = list(getattr(report, "suppressed", ()))
    seen_rules: List[str] = []
    for finding in [*report.findings, *suppressed]:
        if finding.rule not in seen_rules:
            seen_rules.append(finding.rule)
    rules = [{
        "id": rule_id,
        "shortDescription": {
            "text": RULE_DESCRIPTIONS.get(rule_id, rule_id)},
    } for rule_id in sorted(seen_rules)]
    document = {
        "$schema": ("https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json"),
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "reprolint",
                    "informationUri":
                        "https://example.invalid/reprolint",
                    "rules": rules,
                },
            },
            "results": ([_result(finding)
                         for finding in report.findings]
                        + [_result(finding, in_source=True)
                           for finding in suppressed]),
        }],
    }
    return json.dumps(document, indent=2, sort_keys=True)
