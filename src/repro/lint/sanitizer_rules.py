"""RL6xx — sanitizer-coverage rules over the determinism surface.

The reprosan shadow trace (:mod:`repro.sanitizer`) only bisects
divergences it *saw*: a draw from a raw ``random.Random`` constructed
outside the instrumented factory, a stream wound by a stray
``setstate``, or a shard child whose delta ships without a
``SanitizerDelta`` is a blind spot that reappears as an unexplainable
end-of-run digest mismatch.  These rules keep the hook surface
airtight statically:

* **RL601** — raw ``random.Random(...)`` construction outside the
  factory shell.  Every campaign stream must come from
  ``RngFactory.stream()``/``fresh()`` so the sanitizer proxy can see
  the draws; a hand-rolled generator is invisible to the trace.
  Detector-side fixed-seed samplers that never touch the campaign
  surface carry a pragma with that justification.  Import-time
  construction (module or class body) is RL201's finding; this rule
  owns the runtime sites.
* **RL602** — ``getstate()``/``setstate()`` outside the
  factory/sanitizer shells.  Winding a generator behind the trace's
  back desynchronises the shadow stream from the real one; state
  transfer is ``RngFactory.export_states``/``install_states``'s job.
* **RL603** — every construction site of a ``*Delta`` dataclass that
  declares a ``sanitizer`` field must fill it from
  :func:`repro.sanitizer.delta.capture_delta` (directly, through a
  local binding, or by forwarding another delta's ``.sanitizer``).
  ``sanitizer=None`` at a fork point means shard children silently
  stop contributing trace events and shard-vs-serial comparison rots.
* **RL604** — hook laundering.  Code outside the shells must not
  reach into the factory/proxy internals (``._streams``,
  ``._wrapped``, ``._raw``, or ``getattr`` with those names) — and,
  via the fixpoint call graph, must not call a helper that does.  A
  pragma on the helper silences the site, not the capability; every
  caller is flagged independently.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set

from repro.lint.contracts import (
    _calls_outside_defs,
    _module_scope_statements,
)
from repro.lint.findings import Finding, Severity
from repro.lint.rules import ModuleContext, ProjectRule, Rule

#: The modules sanctioned to touch raw generators and proxy internals:
#: the factory itself and the sanitizer package (whose hooks are the
#: instrumentation).
SANITIZER_SHELLS = ("repro/sim/rng.py", "repro/sanitizer/")

#: Factory/proxy internals whose access outside the shells launders
#: draws past the instrumentation.
_HOOK_INTERNALS = frozenset({"_streams", "_wrapped", "_raw"})

#: Import origins of the sanctioned shard-capture helper.
_CAPTURE_ORIGINS = frozenset({
    "repro.sanitizer.delta.capture_delta",
    "repro.sanitizer.capture_delta",
})


def _in_shell(path: str) -> bool:
    return any(path.startswith(prefix) for prefix in SANITIZER_SHELLS)


class RawStreamConstructionRule(Rule):
    """RL601 — streams must be born inside the instrumented factory."""

    rule_id = "RL601"
    severity = Severity.ERROR
    description = ("raw random.Random construction outside the "
                   "instrumented factory surface")
    hint = ("draw from world.rng.stream(name)/fresh(name) so the "
            "sanitizer sees every draw; a hand-rolled generator is "
            "invisible to divergence bisection")

    def run(self, ctx: ModuleContext) -> Iterator[Finding]:
        # Import-time construction is RL201's finding (shared
        # module-scope state); this rule owns the runtime sites.
        import_time = {
            id(call)
            for stmt in _module_scope_statements(ctx.tree)
            for call in _calls_outside_defs(stmt)
        }
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or id(node) in import_time:
                continue
            if ctx.resolve(node.func) == "random.Random":
                yield ctx.finding(
                    self, node,
                    "random.Random(...) constructed outside the "
                    "factory; its draws bypass the sanitizer trace")


class StreamStateTransferRule(Rule):
    """RL602 — generator state moves only through the factory."""

    rule_id = "RL602"
    severity = Severity.ERROR
    description = ("getstate/setstate outside the factory/sanitizer "
                   "shells")
    hint = ("transfer stream state with RngFactory.export_states()/"
            "install_states(); winding a generator directly "
            "desynchronises the shadow trace")

    def run(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute)
                    and func.attr in ("getstate", "setstate")):
                continue
            # ``random.getstate()`` (module-global state) is RL002's
            # finding; this rule owns per-generator transfer.
            if ctx.resolve(func) in ("random.getstate",
                                     "random.setstate"):
                continue
            yield ctx.finding(
                self, node,
                f".{func.attr}() outside the factory shell moves "
                "generator state behind the sanitizer's back")


class ShardSanitizerCaptureRule(ProjectRule):
    """RL603 — fork points exporting a delta must capture the trace."""

    rule_id = "RL603"
    severity = Severity.ERROR
    description = ("shard deltas with a sanitizer field must fill it "
                   "from capture_delta()")
    hint = ("pass sanitizer=capture_delta(SANITIZER, base, segments) "
            "(or forward another delta's .sanitizer); a fork point "
            "that drops the capture blinds shard-vs-serial bisection")

    def run_project(self, graph) -> Iterator[Finding]:
        from repro.lint.stateflow import (
            _construction_sites,
            _dataclass_fields,
            _is_dataclass,
        )

        for module in sorted(graph.modules):
            info = graph.modules[module]
            for name in sorted(info.classes):
                cls = info.classes[name]
                if not (name.endswith("Delta")
                        and isinstance(cls.node, ast.ClassDef)
                        and _is_dataclass(cls.node)
                        and "sanitizer" in _dataclass_fields(cls.node)):
                    continue
                for ctor_info, caller, call in _construction_sites(
                        graph, cls):
                    yield from self._check_site(
                        ctor_info, caller, call, cls)

    def _check_site(self, info, caller, call: ast.Call,
                    cls) -> Iterator[Finding]:
        value: Optional[ast.AST] = None
        for keyword in call.keywords:
            if keyword.arg is None:
                return          # **kwargs: dynamic, RL402's territory
            if keyword.arg == "sanitizer":
                value = keyword.value
        if value is None:
            yield info.ctx.finding(
                self, call,
                f"{cls.name} constructed without a sanitizer= "
                "capture; this fork point exports no SanitizerDelta")
            return
        if not self._is_capture(info.ctx, caller, value):
            yield info.ctx.finding(
                self, value,
                f"{cls.name} sanitizer= is not fed from "
                "capture_delta(); the shard child's trace is dropped")

    def _is_capture(self, ctx: ModuleContext, caller,
                    value: ast.AST) -> bool:
        if self._is_capture_call(ctx, value):
            return True
        # Forwarding another delta's capture (merge/re-wrap paths).
        if isinstance(value, ast.Attribute) and value.attr == "sanitizer":
            return True
        # A local bound from the capture call inside the same function.
        if isinstance(value, ast.Name) and caller is not None:
            for node in ast.walk(caller.node):
                if not isinstance(node, ast.Assign):
                    continue
                if any(isinstance(t, ast.Name) and t.id == value.id
                       for t in node.targets) \
                        and self._is_capture_call(ctx, node.value):
                    return True
        return False

    @staticmethod
    def _is_capture_call(ctx: ModuleContext, node: ast.AST) -> bool:
        return (isinstance(node, ast.Call)
                and ctx.resolve(node.func) in _CAPTURE_ORIGINS)


class HookLaunderingRule(ProjectRule):
    """RL604 — hook internals stay inside the shells, even one hop out."""

    rule_id = "RL604"
    severity = Severity.ERROR
    description = ("factory/proxy internals accessed (directly or via "
                   "a helper) outside the sanitizer shells")
    hint = ("go through the public factory surface (stream()/fresh()/"
            "export_states()); reaching into _streams/_wrapped/_raw "
            "hands out generators the trace cannot see")

    def run_project(self, graph) -> Iterator[Finding]:
        primitives = self._primitive_functions(graph)
        launderers = self._transitive(graph, primitives)
        for module in sorted(graph.modules):
            info = graph.modules[module]
            if _in_shell(info.path):
                continue
            for node, why in self._direct_accesses(info.ctx,
                                                   info.ctx.tree):
                yield info.ctx.finding(
                    self, node, f"{why} outside the sanitizer shells")
            yield from self._check_laundering(graph, info, launderers)

    # -- direct access -------------------------------------------------
    @staticmethod
    def _direct_accesses(ctx: ModuleContext, tree: ast.AST):
        for node in ast.walk(tree):
            if (isinstance(node, ast.Attribute)
                    and node.attr in _HOOK_INTERNALS):
                yield node, f"access to hook internal .{node.attr}"
            elif (isinstance(node, ast.Call)
                  and isinstance(node.func, ast.Name)
                  and node.func.id in ("getattr", "setattr")
                  and len(node.args) >= 2
                  and isinstance(node.args[1], ast.Constant)
                  and node.args[1].value in _HOOK_INTERNALS):
                yield (node, f"{node.func.id}(..., "
                             f"{node.args[1].value!r}) launders a hook "
                             f"internal through dynamic lookup")

    # -- helper laundering over the fixpoint call graph ----------------
    def _primitive_functions(self, graph) -> Set[str]:
        """qnames of non-shell functions that touch hook internals."""
        found: Set[str] = set()
        for qname in sorted(graph.functions):
            fn = graph.functions[qname]
            if _in_shell(fn.path):
                continue
            fn_info = graph.by_path.get(fn.path)
            if fn_info is None:
                continue
            for _node, _why in self._direct_accesses(fn_info.ctx,
                                                     fn.node):
                found.add(qname)
                break
        return found

    @staticmethod
    def _transitive(graph, primitives: Set[str]) -> Dict[str, str]:
        """fn qname -> the primitive it (transitively) reaches."""
        reaches: Dict[str, str] = {qname: qname for qname in primitives}
        changed = True
        while changed:
            changed = False
            for qname in sorted(graph.calls):
                if qname in reaches:
                    continue
                fn = graph.functions.get(qname)
                if fn is not None and _in_shell(fn.path):
                    continue    # shell helpers are the sanctioned route
                for callee in sorted(graph.calls.get(qname, ())):
                    target = reaches.get(callee)
                    if target is not None:
                        reaches[qname] = target
                        changed = True
                        break
        return reaches

    def _check_laundering(self, graph, info,
                          launderers: Dict[str, str]
                          ) -> Iterator[Finding]:
        for fn in sorted(info.functions.values(),
                         key=lambda f: f.qname):
            for call in ast.walk(fn.node):
                if not isinstance(call, ast.Call):
                    continue
                callee = graph.resolve_call(info, fn, call)
                if callee is None or _in_shell(callee.path):
                    continue
                primitive = launderers.get(callee.qname)
                if primitive is None:
                    continue
                yield info.ctx.finding(
                    self, call,
                    f"call launders hook internals through "
                    f"{callee.qname}() (reaches {primitive}())")


def sanitizer_rules() -> List[Rule]:
    return [RawStreamConstructionRule(), StreamStateTransferRule(),
            ShardSanitizerCaptureRule(), HookLaunderingRule()]
