"""RL2xx RNG-discipline and RL3xx API-contract rules.

**RNG discipline.**  Determinism in this reproduction hangs on one
invariant: every entity draws from its *own* named stream fanned out of
the master seed (``world.rng.stream(name)``), received as a parameter.
Module-scope stream construction (RL201) creates import-order-dependent
state; two entities sharing one stream — or requesting the same literal
stream name, which seeds two generators identically — couples their
draw sequences so that adding a draw in one silently shifts the other
(RL202).

**API contract.**  The paper's measurement and countermeasure story
(§5-§6) runs entirely through the Graph API choke point: scope checks,
rate limits and the request log all live in ``graphapi/api.py``.
Collusion/honeypot code that writes to ``socialnet/platform.py``
directly (RL301), or launders the write through a helper defined
elsewhere (RL302), bypasses the very instrumentation the experiments
measure.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from repro.lint.findings import Finding, Severity
from repro.lint.rules import ModuleContext, ProjectRule, Rule
from repro.lint.summaries import platform_mutation_calls
from repro.lint.taint import terminal_base

#: Paths whose code simulates the abusive parties of the paper.
ABUSE_PREFIXES = ("repro/collusion/", "repro/honeypot/")

#: The sanctioned mutation route; RL302 never flags calls into it.
_SANCTIONED_PREFIXES = ("repro/graphapi/",) + ABUSE_PREFIXES

_RNG_FACTORY_METHODS = frozenset({"stream", "fresh", "child"})


def _module_scope_statements(tree: ast.Module) -> Iterator[ast.stmt]:
    """Statements executed at import time: module body and class bodies,
    never function bodies."""
    stack: List[ast.stmt] = list(tree.body)
    while stack:
        stmt = stack.pop(0)
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if isinstance(stmt, ast.ClassDef):
            stack.extend(stmt.body)
            continue
        yield stmt
        for attr in ("body", "orelse", "finalbody"):
            stack.extend(getattr(stmt, attr, []) or [])
        for handler in getattr(stmt, "handlers", []) or []:
            stack.extend(handler.body)


def _calls_outside_defs(stmt: ast.stmt) -> Iterator[ast.Call]:
    """Call nodes in a statement, not descending into nested defs."""
    stack: List[ast.AST] = [stmt]
    while stack:
        node = stack.pop(0)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


class ModuleScopeRngRule(Rule):
    """RL201 — RNG streams constructed at module scope.

    A module-level generator is shared by every importer and its state
    depends on import order; entities must *receive* their stream.
    """

    rule_id = "RL201"
    severity = Severity.ERROR
    description = "RNG stream constructed at module scope"
    hint = ("entities receive their RNG as a parameter rooted in "
            "repro/sim/rng.py (world.rng.stream(name)); module-level "
            "generators are shared, import-order-dependent state")

    def run(self, ctx: ModuleContext) -> Iterator[Finding]:
        for stmt in _module_scope_statements(ctx.tree):
            for call in _calls_outside_defs(stmt):
                label = self._rng_construction(ctx, call)
                if label is not None:
                    yield ctx.finding(
                        self, call,
                        f"module-scope RNG construction {label} is "
                        "shared mutable state")

    @staticmethod
    def _rng_construction(ctx: ModuleContext,
                          call: ast.Call) -> Optional[str]:
        dotted = ctx.resolve(call.func)
        if dotted is not None:
            if dotted == "random.Random":
                return "random.Random(...)"
            if dotted in ("numpy.random.RandomState",
                          "numpy.random.default_rng"):
                return f"{dotted}(...)"
            if dotted.rsplit(".", 1)[-1] == "RngFactory":
                return "RngFactory(...)"
        func = call.func
        if isinstance(func, ast.Attribute):
            # Any factory-method call at import time is stream
            # construction, whatever the factory is bound to.
            if func.attr in _RNG_FACTORY_METHODS:
                return f".{func.attr}(...)"
        elif isinstance(func, ast.Name) and func.id == "RngFactory":
            return "RngFactory(...)"
        return None


class StreamSharingRule(ProjectRule):
    """RL202 — cross-entity RNG stream sharing.

    Three shapes, in decreasing order of subtlety:

    * the same literal stream name requested by two different owners —
      ``RngFactory.stream`` seeds by name, so both draw *identical*
      sequences;
    * an entity handing ``self.rng`` to another entity's constructor;
    * code reaching into another object's stream (``other.rng`` where
      the base is neither ``self`` nor the world).
    """

    rule_id = "RL202"
    severity = Severity.WARNING
    description = "RNG stream shared across entities"
    hint = ("each entity draws from its own named stream: fan a fresh "
            "one out of world.rng.stream(name) instead of sharing")

    def run_project(self, graph) -> Iterator[Finding]:
        by_name: Dict[str, List[Tuple[str, ModuleContext, ast.Call]]] = {}
        for path in sorted(graph.by_path):
            info = graph.by_path[path]
            ctx = info.ctx
            yield from self._local_checks(ctx)
            for call in ast.walk(ctx.tree):
                if not isinstance(call, ast.Call):
                    continue
                func = call.func
                if (isinstance(func, ast.Attribute)
                        and func.attr == "stream" and call.args
                        and isinstance(call.args[0], ast.Constant)
                        and isinstance(call.args[0].value, str)):
                    owner = f"{path}:{self._owner_of(ctx, call)}"
                    by_name.setdefault(call.args[0].value, []).append(
                        (owner, ctx, call))
        for name in sorted(by_name):
            sites = by_name[name]
            owners = {owner for owner, _ctx, _call in sites}
            if len(owners) < 2:
                continue
            for owner, ctx, call in sites:
                others = sorted(o for o in owners if o != owner)
                yield ctx.finding(
                    self, call,
                    f"RNG stream name '{name}' is also requested by "
                    f"{others[0]} — identical seeds, identical draws")

    # ------------------------------------------------------------------
    def _local_checks(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._handoff(ctx, node)
            elif isinstance(node, ast.Attribute):
                if (node.attr in ("rng", "_rng")
                        and isinstance(node.ctx, ast.Load)):
                    base = terminal_base(node.value)
                    if base is not None and base not in ("self", "cls",
                                                         "world"):
                        yield ctx.finding(
                            self, node,
                            f"reaches into another entity's RNG stream "
                            f"({base}.{node.attr})")

    def _handoff(self, ctx: ModuleContext,
                 call: ast.Call) -> Iterator[Finding]:
        func = call.func
        callee = (func.id if isinstance(func, ast.Name)
                  else func.attr if isinstance(func, ast.Attribute)
                  else None)
        if callee is None or not callee[:1].isupper():
            return      # constructor heuristic: CamelCase callee
        values = list(call.args) + [kw.value for kw in call.keywords]
        for value in values:
            if (isinstance(value, ast.Attribute)
                    and value.attr in ("rng", "_rng")
                    and terminal_base(value.value) == "self"):
                yield ctx.finding(
                    self, value,
                    f"hands this entity's own stream (self.{value.attr}) "
                    f"to {callee}; two entities would share one draw "
                    "sequence")

    @staticmethod
    def _owner_of(ctx: ModuleContext, node: ast.AST) -> str:
        current = ctx.parents.get(id(node))
        function: Optional[str] = None
        while current is not None:
            if isinstance(current, ast.ClassDef):
                return current.name
            if (function is None
                    and isinstance(current, (ast.FunctionDef,
                                             ast.AsyncFunctionDef))):
                function = current.name
            current = ctx.parents.get(id(current))
        return function or "<module>"


class ApiContractRule(Rule):
    """RL301 — collusion/honeypot code writing to the platform directly."""

    rule_id = "RL301"
    severity = Severity.ERROR
    description = "direct platform mutation bypassing the Graph API"
    hint = ("platform writes from abusive-party code must go through "
            "graphapi/api.py so scope checks, rate limits and request "
            "logging apply (that instrumentation is what §5-§6 measure)")

    def run(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.path.startswith(ABUSE_PREFIXES):
            return
        for call in platform_mutation_calls(ctx.tree):
            yield ctx.finding(
                self, call,
                f"direct platform write .{call.func.attr}() bypasses "
                "the Graph API choke point")


class IndirectMutationRule(ProjectRule):
    """RL302 — platform writes laundered through an outside helper."""

    rule_id = "RL302"
    severity = Severity.WARNING
    description = "platform mutation reached through a helper"
    hint = ("the called helper writes to the platform directly; route "
            "the write through graphapi/api.py or move the helper "
            "behind it")

    def run_project(self, graph) -> Iterator[Finding]:
        for path in sorted(graph.by_path):
            if not path.startswith(ABUSE_PREFIXES):
                continue
            info = graph.by_path[path]
            for local in sorted(info.functions):
                fn = info.functions[local]
                for node in ast.walk(fn.node):
                    if not isinstance(node, ast.Call):
                        continue
                    callee = graph.resolve_call(info, fn, node)
                    if callee is None:
                        continue
                    if callee.path.startswith(_SANCTIONED_PREFIXES):
                        continue
                    summary = graph.summaries.get(callee.qname)
                    if summary is None or not summary.mutates_platform:
                        continue
                    writes = ", ".join(sorted(summary.mutates_platform))
                    yield info.ctx.finding(
                        self, node,
                        f"calls {callee.qname}() which writes to the "
                        f"platform directly ({writes})")
