"""Intraprocedural taint engine and the RL1xx token-hygiene rules.

The paper's core finding is that OAuth access tokens leak out of the
flows that minted them (§3-§4); the reproduction enforces the inverse
property on itself.  A *token value* — anything read from the token
store, an ``AccessToken.token`` / ``.access_token`` field, a token-DB
lookup, or a parameter named like a token string — must never reach a
**sink**: logging / ``warnings.warn`` (RL101), exception constructors
and the error-envelope renderer (RL102), or checkpoint / export
persistence (RL103).  Passing the value through a registered redactor
(``repro.oauth.redact.redact_token``) sanitises it.

The engine is a forward, flow-sensitive walk over one function (or the
module top level): assignments propagate origin labels, f-strings /
``%`` / ``+`` / ``str.format`` / slicing keep taint alive, unknown
calls drop it (no false positives from ``len(token)``), and registered
redactors clear it.  One level of interprocedural precision comes from
:mod:`repro.lint.summaries`: calling a helper whose parameter reaches
a sink flags the call site, and helpers that return their parameter's
taint propagate it to the caller.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.findings import Finding, Severity
from repro.lint.rules import ModuleContext, Rule

#: Parameter / variable names that self-evidently carry a token string.
TOKEN_PARAM_NAMES = frozenset({
    "access_token", "token", "token_string", "token_str", "input_token",
    "exchange_token", "milked_token", "token_value", "bearer_token",
})

#: Attribute reads that yield a token value regardless of the base.
_TOKEN_ATTRS = frozenset({"token", "access_token"})

#: Terminal base names that denote the token store / token DB.
_TOKEN_STORE_BASES = frozenset({
    "tokens", "_tokens", "token_store", "tokenstore", "token_db",
    "_token_db",
})

#: Token-store methods whose result carries a token (string or
#: AccessToken object — an object's repr embeds the raw string).
_TOKEN_STORE_GETTERS = frozenset({
    "validate", "peek", "issue", "live_token_for", "get",
    "export_state",
})

#: Calls that mint or extract a token string wherever they appear.
_TOKEN_CALLS = frozenset({"token_from_fragment", "_mint_token_string"})

#: Registered redactors: passing a token through one clears its taint.
REDACTORS = frozenset({
    "repro.oauth.redact.redact_token",
    "repro.oauth.redact_token",
    "redact_token",
})

#: String methods that keep taint alive on their result.
_STR_PASSTHROUGH = frozenset({
    "format", "join", "strip", "lstrip", "rstrip", "upper", "lower",
    "replace", "encode", "decode", "ljust", "rjust", "casefold",
    "removeprefix", "removesuffix",
})

#: logger-ish base names for ``<base>.warning(...)`` style sinks.
_LOG_BASES = frozenset({"log", "logger", "_log", "_logger"})
_LOG_METHODS = frozenset({"debug", "info", "warning", "warn", "error",
                          "exception", "critical", "log"})

#: Persistence sinks (module-level dotted names).
_PERSIST_DOTTED = frozenset({
    "pickle.dump", "pickle.dumps", "json.dump", "json.dumps",
    "marshal.dump", "marshal.dumps",
})
_PERSIST_METHODS = frozenset({"writerow", "writerows", "write_text",
                              "write_bytes"})
_CHECKPOINT_BASES = ("checkpoint", "store")

_EXC_SUFFIXES = ("Error", "Exception", "Warning")


def attr_chain(node: ast.AST) -> List[str]:
    """``self.world.tokens`` -> ``["self", "world", "tokens"]``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    parts.reverse()
    return parts


def terminal_base(node: ast.AST) -> Optional[str]:
    """Last component of a call/attribute base expression, if named."""
    chain = attr_chain(node)
    return chain[-1] if chain else None


class TaintSpec:
    """What a taint analysis considers source, sanitizer and sink."""

    #: Propagate through BinOp (+, %) — string building keeps taint.
    propagate_binop = True
    #: Propagate through Subscript loads (slices of a token leak it).
    propagate_subscript = True

    def param_source(self, name: str) -> bool:
        return False

    def expr_source(self, node: ast.AST, ctx: ModuleContext) -> bool:
        return False

    def is_sanitizer(self, call: ast.Call, ctx: ModuleContext) -> bool:
        return False

    def call_sink(self, call: ast.Call,
                  ctx: ModuleContext) -> Optional[str]:
        """A sink kind label for this call, or None."""
        return None

    def binop_sink(self, node: ast.BinOp,
                   ctx: ModuleContext) -> Optional[str]:
        return None


class TokenTaintSpec(TaintSpec):
    """Sources/sinks for the RL1xx token-hygiene family."""

    def param_source(self, name: str) -> bool:
        return name in TOKEN_PARAM_NAMES

    def expr_source(self, node: ast.AST, ctx: ModuleContext) -> bool:
        if isinstance(node, ast.Attribute):
            return (node.attr in _TOKEN_ATTRS
                    and isinstance(node.ctx, ast.Load))
        if isinstance(node, ast.Subscript):
            base = terminal_base(node.value)
            return base in _TOKEN_STORE_BASES
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute):
                if func.attr in _TOKEN_CALLS:
                    return True
                if (func.attr in _TOKEN_STORE_GETTERS
                        and terminal_base(func.value)
                        in _TOKEN_STORE_BASES):
                    return True
            elif (isinstance(func, ast.Name)
                  and func.id in _TOKEN_CALLS):
                return True
        return False

    def is_sanitizer(self, call: ast.Call, ctx: ModuleContext) -> bool:
        dotted = ctx.resolve(call.func)
        if dotted in REDACTORS:
            return True
        func = call.func
        name = (func.id if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute)
                else None)
        return name == "redact_token"

    def call_sink(self, call: ast.Call,
                  ctx: ModuleContext) -> Optional[str]:
        func = call.func
        dotted = ctx.resolve(func)
        # RL101 — logging / warnings
        if dotted is not None:
            root, _, tail = dotted.partition(".")
            if root == "logging" and tail.rsplit(".", 1)[-1] in _LOG_METHODS:
                return "log"
            if dotted == "warnings.warn":
                return "log"
            if dotted in _PERSIST_DOTTED:
                return "persist"
        if isinstance(func, ast.Attribute):
            if (func.attr in _LOG_METHODS
                    and terminal_base(func.value) in _LOG_BASES):
                return "log"
            if func.attr in _PERSIST_METHODS:
                return "persist"
            if func.attr in ("dump", "dumps"):
                base = terminal_base(func.value)
                if base in ("pickle", "json", "marshal"):
                    return "persist"
            if func.attr == "save":
                base = terminal_base(func.value) or ""
                if any(mark in base.lower()
                       for mark in _CHECKPOINT_BASES):
                    return "persist"
        # RL102 — exception constructors / envelope rendering
        callee = (dotted.rsplit(".", 1)[-1] if dotted is not None
                  else func.id if isinstance(func, ast.Name)
                  else func.attr if isinstance(func, ast.Attribute)
                  else None)
        if callee is not None:
            if callee == "error_envelope":
                return "exception"
            if callee.endswith(_EXC_SUFFIXES):
                return "exception"
            project = getattr(ctx, "project", None)
            if project is not None and project.is_exception_class(
                    dotted or callee):
                return "exception"
        return None


class ClockTaintSpec(TaintSpec):
    """Sources/sinks for RL203 (raw sim-clock bucket arithmetic).

    Clock taint deliberately does *not* survive arithmetic or slicing:
    ``end - start`` is a duration, not a clock reading, and duration
    math is fine anywhere.  Only ``%`` / ``//`` / ``/`` applied to a
    value read straight off the clock is flagged.
    """

    propagate_binop = False
    propagate_subscript = False

    def expr_source(self, node: ast.AST, ctx: ModuleContext) -> bool:
        if isinstance(node, ast.Call):
            func = node.func
            return (isinstance(func, ast.Attribute)
                    and func.attr == "now"
                    and terminal_base(func.value) in ("clock", "_clock"))
        if isinstance(node, ast.Attribute):
            return (node.attr == "_now"
                    and terminal_base(node.value) in ("clock", "_clock"))
        return False

    def binop_sink(self, node: ast.BinOp,
                   ctx: ModuleContext) -> Optional[str]:
        if isinstance(node.op, (ast.Mod, ast.FloorDiv, ast.Div)):
            return "clock"
        return None


class TaintWalker:
    """Forward taint propagation over one function body.

    ``initial`` maps names to origin-label sets (origins are parameter
    names in summary mode, the generic ``"<source>"`` tag otherwise).
    After :meth:`walk`, :attr:`sink_hits` holds ``(node, kind,
    origins)`` triples and :attr:`return_origins` the labels that
    reached a ``return``.
    """

    GENERIC = "<source>"

    def __init__(self, ctx: ModuleContext, spec: TaintSpec,
                 initial: Optional[Dict[str, Set[str]]] = None) -> None:
        self.ctx = ctx
        self.spec = spec
        self.tainted: Dict[str, Set[str]] = dict(initial or {})
        self.sink_hits: List[Tuple[ast.AST, str, Set[str]]] = []
        self.return_origins: Set[str] = set()
        self._record = False
        #: >0 while inside a loop body: assignments accumulate origins
        #: instead of replacing them, so loop-carried taint survives.
        self._weak = 0

    # ------------------------------------------------------------------
    def walk(self, body: Sequence[ast.stmt]) -> None:
        """Two passes: the first settles loop-carried taint, the second
        records sink hits against the settled state."""
        self._record = False
        self._walk_block(body)
        self._record = True
        self._walk_block(body)

    # ------------------------------------------------------------------
    # Expression origins
    # ------------------------------------------------------------------
    def origins(self, node: Optional[ast.AST]) -> Set[str]:
        if node is None:
            return set()
        spec = self.spec
        if spec.expr_source(node, self.ctx):
            out = set()
            if isinstance(node, ast.Name):
                out |= self.tainted.get(node.id, set())
            out.add(self.GENERIC)
            return out
        if isinstance(node, ast.Name):
            return set(self.tainted.get(node.id, ()))
        if isinstance(node, ast.Subscript):
            if spec.propagate_subscript:
                return self.origins(node.value)
            return set()
        if isinstance(node, ast.Starred):
            return self.origins(node.value)
        if isinstance(node, ast.Await):
            return self.origins(node.value)
        if isinstance(node, ast.NamedExpr):
            return self.origins(node.value)
        if isinstance(node, ast.BinOp):
            if spec.propagate_binop:
                return self.origins(node.left) | self.origins(node.right)
            return set()
        if isinstance(node, ast.JoinedStr):
            out: Set[str] = set()
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    out |= self.origins(value.value)
            return out
        if isinstance(node, ast.FormattedValue):
            return self.origins(node.value)
        if isinstance(node, ast.IfExp):
            return self.origins(node.body) | self.origins(node.orelse)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            out = set()
            for element in node.elts:
                out |= self.origins(element)
            return out
        if isinstance(node, ast.Dict):
            out = set()
            for value in node.values:
                out |= self.origins(value)
            return out
        if isinstance(node, (ast.ListComp, ast.SetComp,
                             ast.GeneratorExp)):
            return self.origins(node.elt)
        if isinstance(node, ast.DictComp):
            return self.origins(node.key) | self.origins(node.value)
        if isinstance(node, ast.Call):
            return self._call_origins(node)
        return set()

    def _call_origins(self, call: ast.Call) -> Set[str]:
        spec = self.spec
        if spec.is_sanitizer(call, self.ctx):
            return set()
        func = call.func
        arg_origins: Set[str] = set()
        for arg in call.args:
            arg_origins |= self.origins(arg)
        for keyword in call.keywords:
            arg_origins |= self.origins(keyword.value)
        if isinstance(func, ast.Name) and func.id in ("str", "repr",
                                                      "format"):
            return arg_origins
        if isinstance(func, ast.Attribute):
            if func.attr in _STR_PASSTHROUGH:
                return self.origins(func.value) | arg_origins
        constructed = self._constructed_class(call)
        if constructed is not None:
            # A dataclass-style constructor (no explicit __init__)
            # embeds its arguments in the object: CampaignCheckpoint(
            # tokens=export) is as tainted as the export itself.
            return arg_origins
        summary = self._summary_for(call)
        if summary is not None:
            out: Set[str] = set()
            if summary.taint_through:
                for param, value in self._map_args(summary.params, call):
                    if param in summary.taint_through:
                        out |= self.origins(value)
            if getattr(summary, "returns_taint", False):
                out.add(self.GENERIC)
            return out
        return set()

    # ------------------------------------------------------------------
    # Summaries (one-level interprocedural)
    # ------------------------------------------------------------------
    def _summary_for(self, call: ast.Call):
        project = getattr(self.ctx, "project", None)
        if project is None:
            return None
        info = project.by_path.get(self.ctx.path)
        if info is None:
            return None
        caller = getattr(self, "_function", None)
        fn = project.resolve_call(info, caller, call)
        if fn is None:
            return None
        return project.summaries.get(fn.qname)

    def _constructed_class(self, call: ast.Call):
        """The project class constructed by ``call``, when the class
        has no explicit ``__init__`` (dataclass-generated one)."""
        project = getattr(self.ctx, "project", None)
        if project is None:
            return None
        info = project.by_path.get(self.ctx.path)
        if info is None:
            return None
        ci = project.resolve_class(info, call)
        if ci is None:
            return None
        if f"{ci.qname}.__init__" in project.functions:
            return None
        return ci

    @staticmethod
    def _map_args(params: Sequence[str], call: ast.Call
                  ) -> Iterator[Tuple[str, ast.AST]]:
        for index, arg in enumerate(call.args):
            if isinstance(arg, ast.Starred):
                break
            if index < len(params):
                yield params[index], arg
        for keyword in call.keywords:
            if keyword.arg is not None and keyword.arg in params:
                yield keyword.arg, keyword.value

    # ------------------------------------------------------------------
    # Statement walking
    # ------------------------------------------------------------------
    def _walk_block(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self._walk_stmt(stmt)

    def _walk_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            self._visit_expr(stmt.value)
            origins = self.origins(stmt.value)
            for target in stmt.targets:
                self._assign(target, origins, stmt.value)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._visit_expr(stmt.value)
                self._assign(stmt.target, self.origins(stmt.value),
                             stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            self._visit_expr(stmt.value)
            origins = self.origins(stmt.value)
            if isinstance(stmt.target, ast.Name):
                origins |= self.tainted.get(stmt.target.id, set())
                self._set(stmt.target.id, origins)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._visit_expr(stmt.value)
                self.return_origins |= self.origins(stmt.value)
        elif isinstance(stmt, ast.Expr):
            self._visit_expr(stmt.value)
        elif isinstance(stmt, ast.If):
            self._visit_expr(stmt.test)
            self._walk_block(stmt.body)
            self._walk_block(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self._visit_expr(stmt.test)
            self._loop_block(list(stmt.body) + list(stmt.orelse))
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._visit_expr(stmt.iter)
            self._assign(stmt.target, self.origins(stmt.iter), None)
            self._loop_block(list(stmt.body) + list(stmt.orelse))
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._visit_expr(item.context_expr)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars,
                                 self.origins(item.context_expr), None)
            self._walk_block(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._walk_block(stmt.body)
            for handler in stmt.handlers:
                self._walk_block(handler.body)
            self._walk_block(stmt.orelse)
            self._walk_block(stmt.finalbody)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._visit_expr(stmt.exc)
            if stmt.cause is not None:
                self._visit_expr(stmt.cause)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    self.tainted.pop(target.id, None)
        elif isinstance(stmt, ast.Assert):
            self._visit_expr(stmt.test)
            if stmt.msg is not None:
                self._visit_expr(stmt.msg)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            pass        # nested definitions are analysed separately
        # remaining simple statements carry no taint-relevant expressions

    def _assign(self, target: ast.AST, origins: Set[str],
                value: Optional[ast.AST]) -> None:
        if isinstance(target, ast.Name):
            self._set(target.id, origins)
        elif isinstance(target, (ast.Tuple, ast.List)):
            values = (value.elts if isinstance(value, (ast.Tuple, ast.List))
                      and len(value.elts) == len(target.elts) else None)
            for index, element in enumerate(target.elts):
                element_origins = (self.origins(values[index])
                                   if values is not None else set(origins))
                self._assign(element, element_origins, None)
        # attribute / subscript stores are not tracked

    def _loop_block(self, body: Sequence[ast.stmt]) -> None:
        """Walk a loop body twice: the first (silent) walk seeds
        loop-carried taint, the second observes it at the sinks."""
        record = self._record
        self._weak += 1
        self._record = False
        self._walk_block(body)
        self._record = record
        self._walk_block(body)
        self._weak -= 1

    def _set(self, name: str, origins: Set[str]) -> None:
        if self._weak:
            # Inside a loop an assignment of a clean value does not
            # clear taint — a later iteration may still observe the
            # tainted binding from this one.
            if origins:
                self.tainted.setdefault(name, set()).update(origins)
            return
        if origins:
            self.tainted[name] = set(origins)
        else:
            self.tainted.pop(name, None)

    # ------------------------------------------------------------------
    # Expression visiting (sink detection)
    # ------------------------------------------------------------------
    def _visit_expr(self, node: ast.AST) -> None:
        if isinstance(node, ast.Call):
            self._check_call(node)
            self._visit_expr(node.func)
            for arg in node.args:
                self._visit_expr(arg)
            for keyword in node.keywords:
                self._visit_expr(keyword.value)
            return
        if isinstance(node, ast.BinOp):
            self._check_binop(node)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            return
        for child in ast.iter_child_nodes(node):
            self._visit_expr(child)

    def _check_call(self, call: ast.Call) -> None:
        if not self._record:
            return
        spec = self.spec
        kind = spec.call_sink(call, self.ctx)
        if kind is not None:
            origins: Set[str] = set()
            for arg in call.args:
                origins |= self.origins(arg)
            for keyword in call.keywords:
                origins |= self.origins(keyword.value)
            if origins:
                self.sink_hits.append((call, kind, origins))
            return
        summary = self._summary_for(call)
        if summary is not None and summary.param_sink_flows:
            for param, value in self._map_args(summary.params, call):
                kinds = summary.param_sink_flows.get(param)
                if not kinds:
                    continue
                origins = self.origins(value)
                if origins:
                    for flow_kind in sorted(kinds):
                        self.sink_hits.append(
                            (call, f"{flow_kind}:via", origins))

    def _check_binop(self, node: ast.BinOp) -> None:
        if not self._record:
            return
        kind = self.spec.binop_sink(node, self.ctx)
        if kind is None:
            return
        origins = self.origins(node.left) | self.origins(node.right)
        if origins:
            self.sink_hits.append((node, kind, origins))


# ----------------------------------------------------------------------
# Running the walker over a module
# ----------------------------------------------------------------------
def iter_function_defs(tree: ast.Module) -> Iterator[ast.AST]:
    """Every function/method definition, at any nesting depth."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def module_toplevel(tree: ast.Module) -> List[ast.stmt]:
    """Module statements outside any definition (defs excluded)."""
    return [stmt for stmt in tree.body
            if not isinstance(stmt, (ast.FunctionDef,
                                     ast.AsyncFunctionDef, ast.ClassDef))]


def analyse_module(ctx: ModuleContext, spec: TaintSpec
                   ) -> List[Tuple[ast.AST, str, Set[str]]]:
    """Sink hits for every function in a module plus its top level."""
    hits: List[Tuple[ast.AST, str, Set[str]]] = []
    for node in iter_function_defs(ctx.tree):
        initial: Dict[str, Set[str]] = {}
        args = node.args
        for arg in (args.posonlyargs + args.args + args.kwonlyargs):
            if spec.param_source(arg.arg):
                initial[arg.arg] = {TaintWalker.GENERIC}
        walker = TaintWalker(ctx, spec, initial)
        walker._function = _function_info_for(ctx, node)
        walker.walk(node.body)
        hits.extend(walker.sink_hits)
    top = TaintWalker(ctx, spec)
    top.walk(module_toplevel(ctx.tree))
    hits.extend(top.sink_hits)
    return hits


def _function_info_for(ctx: ModuleContext, node: ast.AST):
    project = getattr(ctx, "project", None)
    if project is None:
        return None
    info = project.by_path.get(ctx.path)
    if info is None:
        return None
    for fn in info.functions.values():
        if fn.node is node:
            return fn
    return None


# ----------------------------------------------------------------------
# RL1xx rules
# ----------------------------------------------------------------------
_SINK_RULES = {
    "log": ("RL101", "token value flows into a logging sink",
            "redact before logging: log redact_token(token), never the "
            "raw value"),
    "exception": ("RL102", "token value flows into an exception message",
                  "exception text lands in error envelopes clients "
                  "parse; pass redact_token(token) instead"),
    "persist": ("RL103", "token value persisted to an experiment "
                "artifact",
                "checkpoints/exports must carry redact_token(token) "
                "digests, never live tokens"),
}


class TokenTaintRule(Rule):
    """RL101/RL102/RL103 — token values reaching telemetry sinks."""

    rule_id = "RL101"
    severity = Severity.ERROR
    description = "token-taint: token values must not reach sinks"
    hint = ""

    def run(self, ctx: ModuleContext) -> Iterator[Finding]:
        spec = TokenTaintSpec()
        seen: Set[Tuple[int, int, str]] = set()
        for node, kind, _origins in analyse_module(ctx, spec):
            via = kind.endswith(":via")
            base_kind = kind.split(":", 1)[0]
            rule_id, message, hint = _SINK_RULES[base_kind]
            if via:
                message += " (through a called helper)"
            lineno = getattr(node, "lineno", 1)
            key = (lineno, getattr(node, "col_offset", 0), rule_id)
            if key in seen:
                continue
            seen.add(key)
            yield Finding(
                path=ctx.path, line=lineno,
                col=getattr(node, "col_offset", 0) + 1,
                rule=rule_id, severity=Severity.ERROR,
                message=message, hint=hint,
                snippet=ctx.snippet(lineno))


class SimClockArithmeticRule(Rule):
    """RL203 — raw bucket arithmetic on sim-clock readings.

    ``now % DAY`` / ``now // DAY`` re-derives the clock's internal
    representation; when the epoch or tick unit changes, every such
    site silently shifts.  The accessors (``clock.day()``,
    ``clock.hour_of_day()``) are the stable interface.  Duration math
    (``end - start``) is untouched — clock taint dies at arithmetic.
    """

    rule_id = "RL203"
    severity = Severity.WARNING
    description = "raw modulo/floor-div arithmetic on sim-clock values"
    hint = ("bucket through the clock API (clock.day(), "
            "clock.hour_of_day()) instead of re-deriving it from raw "
            "ticks outside repro/sim/")

    def run(self, ctx: ModuleContext) -> Iterator[Finding]:
        spec = ClockTaintSpec()
        for node, _kind, _origins in analyse_module(ctx, spec):
            lineno = getattr(node, "lineno", 1)
            yield Finding(
                path=ctx.path, line=lineno,
                col=getattr(node, "col_offset", 0) + 1,
                rule=self.rule_id, severity=self.severity,
                message="raw arithmetic on a sim-clock reading "
                        "re-derives the clock's representation",
                hint=self.hint, snippet=ctx.snippet(lineno))
