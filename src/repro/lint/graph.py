"""Project-level symbol table, import graph and call graph.

The v2 rule families (token taint, RNG/clock discipline, API contract)
need to see past a single module: which names are classes, which
classes are exceptions, which function a call site resolves to, and
what that function does with its parameters (``repro.lint.summaries``).
:class:`ProjectGraph` provides that view.  It is built once per engine
run over every module that parsed, and each :class:`ModuleContext`
gets a back-reference so per-module rules can consult it.

Parsing is the dominant cost of a full-tree run, so modules are cached
process-wide keyed by ``(path, mtime_ns, size)``, with a blake2b
content-digest fallback for files whose mtime moved but whose bytes
did not (touched files, fresh clones) — repeated engine runs in one
process (the test suite, ``--write-baseline`` after a check run)
rebuild the graph from cached ASTs in microseconds.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.lint.rules import ModuleContext

#: Builtin exception names treated as exceptional roots when resolving
#: whether a project class is an exception type.
_BUILTIN_EXCEPTIONS = frozenset({
    "BaseException", "Exception", "ArithmeticError", "AssertionError",
    "AttributeError", "BufferError", "EOFError", "ImportError",
    "IndexError", "KeyError", "KeyboardInterrupt", "LookupError",
    "MemoryError", "NameError", "NotImplementedError", "OSError",
    "OverflowError", "PermissionError", "RecursionError",
    "ReferenceError", "RuntimeError", "StopIteration", "SyntaxError",
    "SystemError", "SystemExit", "TimeoutError", "TypeError",
    "ValueError", "ZeroDivisionError", "EnvironmentError", "IOError",
    "Warning", "UserWarning", "RuntimeWarning", "DeprecationWarning",
})


def module_name_of(path: str) -> str:
    """Dotted module name for a normalised posix path.

    ``repro/graphapi/api.py`` -> ``repro.graphapi.api``;
    ``repro/lint/__init__.py`` -> ``repro.lint``.
    """
    parts = list(Path(path).with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


@dataclass
class FunctionInfo:
    """One function or method definition in the project."""

    qname: str                  # repro.graphapi.api.GraphApi.execute
    name: str
    module: str
    path: str
    cls: Optional[str]          # enclosing class name, if a method
    node: ast.AST               # FunctionDef | AsyncFunctionDef

    @property
    def params(self) -> List[str]:
        args = self.node.args
        names = [a.arg for a in args.posonlyargs + args.args]
        if self.cls is not None and names and names[0] in ("self", "cls"):
            names = names[1:]
        return names + [a.arg for a in args.kwonlyargs]


@dataclass
class ClassInfo:
    """One class definition in the project."""

    qname: str
    name: str
    module: str
    path: str
    bases: Tuple[str, ...]      # resolved dotted bases where possible
    node: ast.AST


@dataclass
class ModuleInfo:
    """Per-module slice of the project graph."""

    path: str
    module: str
    ctx: ModuleContext
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    imports: Set[str] = field(default_factory=set)


class ProjectGraph:
    """Symbol table + import/call graph over a set of parsed modules."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.by_path: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: caller qname -> set of resolved callee qnames
        self.calls: Dict[str, Set[str]] = {}
        #: function qname -> FunctionSummary (repro.lint.summaries)
        self.summaries: Dict[str, object] = {}
        self._exceptional: Dict[str, bool] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, contexts: Iterable[ModuleContext]) -> "ProjectGraph":
        graph = cls()
        for ctx in contexts:
            graph._index_module(ctx)
        for info in graph.modules.values():
            graph._link_calls(info)
        # The fixpoint resolves calls through ctx.project while it
        # iterates, so the back-reference must be live before
        # build_summaries runs (lazy import avoids a cycle at load).
        for ctx in contexts:
            ctx.project = graph
        from repro.lint.summaries import build_summaries

        build_summaries(graph)
        return graph

    def _index_module(self, ctx: ModuleContext) -> None:
        module = module_name_of(ctx.path)
        info = ModuleInfo(path=ctx.path, module=module, ctx=ctx)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    info.imports.add(alias.name)
            elif isinstance(node, ast.ImportFrom) and node.module:
                info.imports.add(node.module)
        for node in ctx.tree.body:
            self._index_def(info, node, prefix="")
        self.modules[module] = info
        self.by_path[ctx.path] = info

    def _index_def(self, info: ModuleInfo, node: ast.AST,
                   prefix: str) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            local = f"{prefix}{node.name}"
            qname = f"{info.module}.{local}"
            fn = FunctionInfo(
                qname=qname, name=node.name, module=info.module,
                path=info.path,
                cls=prefix[:-1] if prefix else None, node=node)
            info.functions[local] = fn
            self.functions[qname] = fn
        elif isinstance(node, ast.ClassDef):
            bases = tuple(
                info.ctx.resolve(base) or self._base_name(base)
                for base in node.bases)
            qname = f"{info.module}.{node.name}"
            ci = ClassInfo(qname=qname, name=node.name,
                           module=info.module, path=info.path,
                           bases=tuple(b for b in bases if b),
                           node=node)
            info.classes[node.name] = ci
            self.classes[qname] = ci
            for child in node.body:
                self._index_def(info, child, prefix=f"{node.name}.")

    @staticmethod
    def _base_name(node: ast.AST) -> str:
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            parts.append(node.id)
        return ".".join(reversed(parts))

    # ------------------------------------------------------------------
    # Call resolution
    # ------------------------------------------------------------------
    def _link_calls(self, info: ModuleInfo) -> None:
        for local, fn in info.functions.items():
            callees: Set[str] = set()
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                target = self.resolve_call(info, fn, node)
                if target is not None:
                    callees.add(target.qname)
            self.calls[fn.qname] = callees

    def resolve_call(self, info: ModuleInfo, caller: Optional[FunctionInfo],
                     call: ast.Call) -> Optional[FunctionInfo]:
        """Best-effort resolution of a call site to a project function.

        Handles imported names (via the module's alias table), local
        module-level functions, and ``self.method()`` within a class.
        Method calls on arbitrary objects stay unresolved — one-level
        summaries deliberately trade soundness for zero surprises.
        """
        func = call.func
        dotted = info.ctx.resolve(func)
        if dotted is not None:
            fn = self.functions.get(dotted)
            if fn is not None:
                return fn
            # from x import Class; Class.method / instance constructors
            ci = self.classes.get(dotted)
            if ci is not None:
                init = self.functions.get(f"{ci.qname}.__init__")
                return init
        if isinstance(func, ast.Name):
            fn = info.functions.get(func.id)
            if fn is not None:
                return fn
            ci = info.classes.get(func.id)
            if ci is not None:
                return self.functions.get(f"{ci.qname}.__init__")
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "self"
                and caller is not None and caller.cls is not None):
            return info.functions.get(f"{caller.cls}.{func.attr}")
        return None

    def resolve_class(self, info: ModuleInfo,
                      call: ast.Call) -> Optional[ClassInfo]:
        """The project class a call constructs, if any."""
        func = call.func
        dotted = info.ctx.resolve(func)
        if dotted is not None:
            ci = self.classes.get(dotted)
            if ci is not None:
                return ci
        if isinstance(func, ast.Name):
            return info.classes.get(func.id)
        return None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def is_exception_class(self, name: str) -> bool:
        """Whether ``name`` (dotted or bare last component) denotes an
        exception type, chasing project class bases to builtin roots."""
        last = name.rsplit(".", 1)[-1]
        if last in _BUILTIN_EXCEPTIONS:
            return True
        cached = self._exceptional.get(name)
        if cached is not None:
            return cached
        self._exceptional[name] = False   # cycle guard
        ci = self.classes.get(name)
        if ci is None:
            # Fall back to matching a uniquely named project class.
            matches = [c for c in self.classes.values() if c.name == last]
            ci = matches[0] if len(matches) == 1 else None
        result = False
        if ci is not None:
            result = any(self.is_exception_class(base)
                         for base in ci.bases)
        self._exceptional[name] = result
        return result


# ----------------------------------------------------------------------
# Process-wide parse cache
# ----------------------------------------------------------------------
#: (absolute path) -> (mtime_ns, size, content digest, ModuleContext,
#: pragma maps)
_PARSE_CACHE: Dict[str, Tuple[int, int, str, ModuleContext, object]] = {}

#: Process-wide counters; engines snapshot deltas per run and surface
#: them in ``--json`` output.  ``stat_hits`` reused on an unchanged
#: stat signature; ``content_hits`` rescued by the digest fallback
#: after the mtime moved (touch, fresh checkout); ``misses`` parsed.
CACHE_STATS: Dict[str, int] = {
    "stat_hits": 0, "content_hits": 0, "misses": 0,
}


def _content_digest(source: str) -> str:
    import hashlib

    return hashlib.blake2b(source.encode("utf-8"),
                           digest_size=16).hexdigest()


def cached_parse(path: str, source_path: Path,
                 source: str) -> Optional[Tuple[ModuleContext, object]]:
    """Parsed context + pragmas for a file, reusing the process cache.

    Returns ``None`` on a syntax error (callers emit RL000).  The fast
    key is the file's stat signature; when the mtime moved but the
    bytes did not (touched files, freshly cloned trees), a blake2b
    content digest rescues the hit and the signature is refreshed.
    An edited file re-parses.
    """
    from repro.lint.engine import parse_pragmas

    key = str(source_path.resolve())
    try:
        stat = source_path.stat()
        signature = (stat.st_mtime_ns, stat.st_size)
    except OSError:
        signature = None
    hit = _PARSE_CACHE.get(key)
    if (signature is not None and hit is not None
            and hit[3].path == path):
        if (hit[0], hit[1]) == signature:
            CACHE_STATS["stat_hits"] += 1
            return hit[3], hit[4]
        if hit[2] == _content_digest(source):
            CACHE_STATS["content_hits"] += 1
            _PARSE_CACHE[key] = (signature[0], signature[1], hit[2],
                                 hit[3], hit[4])
            return hit[3], hit[4]
    CACHE_STATS["misses"] += 1
    ctx = ModuleContext.build(path, source)       # may raise SyntaxError
    pragmas = parse_pragmas(ctx.lines)
    if signature is not None:
        _PARSE_CACHE[key] = (signature[0], signature[1],
                             _content_digest(source), ctx, pragmas)
    return ctx, pragmas
