"""RL4xx — state-coverage rules over the durability layer.

Resume and sharding are only byte-identical if every piece of mutable
state crosses the capture/restore boundary.  These rules prove that
statically, on top of the mutation-effect lattice the fixpoint
(:mod:`repro.lint.fixpoint`) computes:

* **RL401** — snapshot coverage.  Any class exposing an
  ``export_*``/``install_*`` (or ``adopt_*``) protocol must read every
  mutable attribute in the export path and write it back in the
  install path.  ``self.__dict__``-based snapshots cover everything
  except the names listed in a class-level constant the export reads
  (a skip list); skipped-but-mutated attributes are flagged so every
  exception carries an explicit pragma justification.  Module-level
  ``capture_X``/``install_X`` pairs returning dict literals are
  cross-checked key-by-key, and ``*Checkpoint`` dataclasses must have
  every field passed explicitly at each construction site and consumed
  somewhere in the defining module.
* **RL402** — shard delta coverage and purity.  ``*Delta`` dataclasses
  get the same explicit-construction and consumption checks (a field
  the merge never reads is state the parent silently drops).  In
  addition, the body of an ``os.fork()`` child branch — plus every
  project function it transitively calls — must not write
  parent-visible state outside the delta: no named-file writes, no
  ``pickle.dump``-style serialisation to handles, no module-global
  mutation.  ``os.fdopen`` on an inherited pipe fd is the sanctioned
  channel home and is exempt.
* **RL403** — journal codec discipline.  Inside ``repro/journal/``,
  payloads handed to a frame append must be produced by the approved
  codec (``encode_*`` functions, or ``json.dumps``) — never by raw
  ``repr()``/``pickle.dumps``/``marshal.dumps`` inline — and frame
  payloads must be decoded only inside ``decode_*`` functions (no
  stray ``literal_eval``/``pickle.loads``/``eval``).
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.findings import Finding, Severity
from repro.lint.rules import ModuleContext, ProjectRule
from repro.lint.taint import attr_chain, terminal_base

_CAPTURE_NAME = re.compile(r"^_?capture_(\w+)$")

#: Filesystem mutations a forked shard child must not perform.
_OS_FILE_MUTATIONS = frozenset({
    "os.remove", "os.unlink", "os.rename", "os.replace", "os.truncate",
    "os.makedirs", "os.mkdir", "os.rmdir",
})
_DUMP_TO_HANDLE = frozenset({"pickle.dump", "json.dump", "marshal.dump"})
_WRITE_MODES = frozenset("wax+")

#: Frame-append method names in the journal layer.
_FRAME_APPENDS = frozenset({"_write_frame", "write_frame", "append_frame"})
#: Encoders banned outside ``encode_*`` codec functions.
_RAW_ENCODERS_DOTTED = frozenset({"pickle.dumps", "marshal.dumps"})
#: Decoders banned outside ``decode_*`` codec functions.
_RAW_DECODERS_DOTTED = frozenset({
    "ast.literal_eval", "pickle.loads", "marshal.loads",
})


def _is_dataclass(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) \
            else decorator
        name = (target.id if isinstance(target, ast.Name)
                else target.attr if isinstance(target, ast.Attribute)
                else None)
        if name == "dataclass":
            return True
    return False


def _dataclass_fields(node: ast.ClassDef) -> List[str]:
    fields: List[str] = []
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name):
            fields.append(stmt.target.id)
    return fields


def _ctor_missing_fields(call: ast.Call,
                         fields: List[str]) -> List[str]:
    """Fields not passed explicitly; empty when the call is dynamic."""
    provided: Set[str] = set()
    for index, arg in enumerate(call.args):
        if isinstance(arg, ast.Starred):
            return []
        if index < len(fields):
            provided.add(fields[index])
    for keyword in call.keywords:
        if keyword.arg is None:
            return []
        provided.add(keyword.arg)
    return [name for name in fields if name not in provided]


def _attr_loads(tree: ast.AST) -> Set[str]:
    return {node.attr for node in ast.walk(tree)
            if isinstance(node, ast.Attribute)
            and isinstance(node.ctx, ast.Load)}


def _self_attr_loads(fn_node: ast.AST) -> Set[str]:
    reads: Set[str] = set()
    for node in ast.walk(fn_node):
        if isinstance(node, ast.Attribute) and isinstance(
                node.ctx, ast.Load):
            chain = attr_chain(node)
            if len(chain) >= 2 and chain[0] == "self":
                reads.add(chain[1])
    return reads


def _class_const_collections(node: ast.ClassDef) -> Dict[str, Set[str]]:
    """Class-body names bound to literal string collections."""
    consts: Dict[str, Set[str]] = {}
    for stmt in node.body:
        if not isinstance(stmt, ast.Assign):
            continue
        value = stmt.value
        if (isinstance(value, ast.Call) and len(value.args) == 1
                and not value.keywords
                and isinstance(value.func, ast.Name)
                and value.func.id in ("frozenset", "set", "tuple",
                                      "list")):
            value = value.args[0]
        if not isinstance(value, (ast.Set, ast.Tuple, ast.List)):
            continue
        if not all(isinstance(e, ast.Constant)
                   and isinstance(e.value, str) for e in value.elts):
            continue
        names = {e.value for e in value.elts}
        for target in stmt.targets:
            if isinstance(target, ast.Name):
                consts[target.id] = names
    return consts


class _ClassView:
    """One class plus its method FunctionInfos and summaries."""

    def __init__(self, graph, info, cls) -> None:
        self.graph = graph
        self.info = info
        self.cls = cls
        self.methods = {
            fn.name: fn for fn in info.functions.values()
            if fn.cls == cls.name
        }

    def summary(self, method_name: str):
        fn = self.methods.get(method_name)
        if fn is None:
            return None
        return self.graph.summaries.get(fn.qname)

    def closure(self, method_name: str) -> List[str]:
        """Same-class methods reachable from ``method_name`` via
        ``self.*()`` calls (the resolved call graph)."""
        prefix = f"{self.info.module}.{self.cls.name}."
        seen: Set[str] = set()
        queue = [method_name]
        order: List[str] = []
        while queue:
            name = queue.pop()
            if name in seen or name not in self.methods:
                continue
            seen.add(name)
            order.append(name)
            qname = self.methods[name].qname
            for callee in sorted(self.graph.calls.get(qname, ())):
                if callee.startswith(prefix):
                    queue.append(callee[len(prefix):])
        return order


class SnapshotCoverageRule(ProjectRule):
    """RL401 — mutable state must cross the snapshot boundary."""

    rule_id = "RL401"
    severity = Severity.ERROR
    description = ("snapshot-protocol classes must export and install "
                   "every mutable attribute")
    hint = ("thread the attribute through export_*/install_* (and the "
            "checkpoint dataclass), or pragma it with the reason it is "
            "safe to drop across a resume")

    def run_project(self, graph) -> Iterator[Finding]:
        for module in sorted(graph.modules):
            info = graph.modules[module]
            yield from self._check_classes(graph, info)
            yield from self._check_capture_pairs(graph, info)
            yield from self._check_checkpoint_dataclasses(graph, info)

    # -- export_*/install_* protocol classes ---------------------------
    def _check_classes(self, graph, info) -> Iterator[Finding]:
        for cls_name in sorted(info.classes):
            cls = info.classes[cls_name]
            view = _ClassView(graph, info, cls)
            exports = sorted(n for n in view.methods
                             if n.startswith("export"))
            installs = sorted(n for n in view.methods
                              if n.startswith(("install", "adopt")))
            if not exports or not installs:
                continue
            snapshot_methods = set(exports) | set(installs)
            mutated: Set[str] = set()
            for name in sorted(view.methods):
                if name == "__init__" or name in snapshot_methods:
                    continue
                summary = view.summary(name)
                if summary is not None:
                    mutated |= summary.self_writes
            consts = _class_const_collections(cls.node)
            export_reads: Set[str] = set()
            for name in exports:
                for member in view.closure(name):
                    export_reads |= _self_attr_loads(
                        view.methods[member].node)
            install_writes: Set[str] = set()
            for name in installs:
                summary = view.summary(name)
                if summary is not None:
                    install_writes |= summary.self_writes
                install_writes |= {
                    read for read in _self_attr_loads(
                        view.methods[name].node)
                    if read == "__dict__"}
            skip: Set[str] = set()
            for const_name, names in sorted(consts.items()):
                if const_name in export_reads | install_writes:
                    skip |= names
            export_dynamic = "__dict__" in export_reads
            install_dynamic = "__dict__" in install_writes
            for attr in sorted(mutated):
                if attr.startswith("__"):
                    continue
                export_ok = attr in export_reads or (
                    export_dynamic and attr not in skip)
                install_ok = attr in install_writes or (
                    install_dynamic and attr not in skip)
                if export_ok and install_ok:
                    continue
                missing = []
                if not export_ok:
                    missing.append(f"{'/'.join(exports)} read")
                if not install_ok:
                    missing.append(f"{'/'.join(installs)} write")
                yield info.ctx.finding(
                    self, cls.node,
                    f"mutable attribute '{attr}' of {cls.name} is not "
                    f"covered by the snapshot protocol (missing: "
                    f"{', '.join(missing)})")

    # -- module-level capture_X/install_X dict pairs -------------------
    def _check_capture_pairs(self, graph, info) -> Iterator[Finding]:
        functions = {name: fn for name, fn in info.functions.items()
                     if fn.cls is None}
        for name in sorted(functions):
            match = _CAPTURE_NAME.match(name)
            if match is None:
                continue
            suffix = match.group(1)
            install = functions.get(f"install_{suffix}") or \
                functions.get(f"_install_{suffix}")
            if install is None:
                continue
            captured = self._captured_keys(functions[name].node)
            if captured is None:
                continue
            installed = self._installed_keys(install.node)
            for key in sorted(captured - installed):
                yield info.ctx.finding(
                    self, functions[name].node,
                    f"{name}() captures key '{key}' that "
                    f"{install.name}() never installs")
            for key in sorted(installed - captured):
                yield info.ctx.finding(
                    self, install.node,
                    f"{install.name}() installs key '{key}' that "
                    f"{name}() never captures")

    @staticmethod
    def _captured_keys(fn_node: ast.AST) -> Optional[Set[str]]:
        """Union of constant keys over dict-literal returns; None when
        no return is a plain dict literal (comprehensions etc.)."""
        keys: Optional[Set[str]] = None
        for node in ast.walk(fn_node):
            if not isinstance(node, ast.Return) or not isinstance(
                    node.value, ast.Dict):
                continue
            literal: Set[str] = set()
            for key in node.value.keys:
                if not (isinstance(key, ast.Constant)
                        and isinstance(key.value, str)):
                    return None
                literal.add(key.value)
            keys = (keys or set()) | literal
        return keys

    @staticmethod
    def _installed_keys(fn_node: ast.AST) -> Set[str]:
        params = {a.arg for a in (fn_node.args.posonlyargs
                                  + fn_node.args.args
                                  + fn_node.args.kwonlyargs)}
        keys: Set[str] = set()
        for node in ast.walk(fn_node):
            if (isinstance(node, ast.Subscript)
                    and isinstance(node.value, ast.Name)
                    and node.value.id in params
                    and isinstance(node.slice, ast.Constant)
                    and isinstance(node.slice.value, str)):
                keys.add(node.slice.value)
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "get"
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in params
                    and node.args
                    and isinstance(node.args[0], ast.Constant)
                    and isinstance(node.args[0].value, str)):
                keys.add(node.args[0].value)
        return keys

    # -- *Checkpoint dataclasses ---------------------------------------
    def _check_checkpoint_dataclasses(self, graph,
                                      info) -> Iterator[Finding]:
        yield from _check_record_dataclasses(
            self, graph, info, suffix="Checkpoint", noun="checkpoint")


def _check_record_dataclasses(rule, graph, info, suffix: str,
                              noun: str) -> Iterator[Finding]:
    """Shared RL401/RL402 check for capture-record dataclasses:
    every field passed explicitly at each construction site, every
    field consumed somewhere in the defining module."""
    targets = [cls for name, cls in sorted(info.classes.items())
               if name.endswith(suffix)
               and isinstance(cls.node, ast.ClassDef)
               and _is_dataclass(cls.node)]
    if not targets:
        return
    module_reads = _attr_loads(info.ctx.tree)
    for cls in targets:
        fields = _dataclass_fields(cls.node)
        for field_name in fields:
            if field_name not in module_reads:
                yield info.ctx.finding(
                    rule, cls.node,
                    f"{noun} field '{cls.name}.{field_name}' is "
                    f"captured but never consumed in "
                    f"{info.module} — restore/merge silently drops it")
        for ctor_info, caller, call in _construction_sites(graph, cls):
            missing = _ctor_missing_fields(call, fields)
            for field_name in missing:
                yield ctor_info.ctx.finding(
                    rule, call,
                    f"{noun} field '{cls.name}.{field_name}' not "
                    f"passed explicitly at this construction site "
                    f"(silently defaulted)")


def _construction_sites(graph, cls) -> Iterator[Tuple]:
    """(module info, enclosing fn, call) for every resolved ctor."""
    for module in sorted(graph.modules):
        info = graph.modules[module]
        for fn in info.functions.values():
            for node in ast.walk(fn.node):
                if isinstance(node, ast.Call):
                    if graph.resolve_class(info, node) is cls:
                        yield info, fn, node


class ShardDeltaRule(ProjectRule):
    """RL402 — shard deltas are complete and shard children are pure."""

    rule_id = "RL402"
    severity = Severity.ERROR
    description = ("shard deltas must carry every field and forked "
                   "children must not write parent-visible state")
    hint = ("route child state home through the delta (and consume "
            "every delta field in the merge), or pragma the sanctioned "
            "channel with its justification")

    def run_project(self, graph) -> Iterator[Finding]:
        for module in sorted(graph.modules):
            info = graph.modules[module]
            yield from _check_record_dataclasses(
                self, graph, info, suffix="Delta", noun="shard delta")
            yield from self._check_fork_purity(graph, info)

    # -- forked-child purity -------------------------------------------
    def _check_fork_purity(self, graph, info) -> Iterator[Finding]:
        for fn in sorted(info.functions.values(),
                         key=lambda f: f.qname):
            fork_names = self._fork_result_names(info, fn.node)
            if not fork_names:
                continue
            for branch in self._child_branches(fn.node, fork_names):
                yield from self._check_child_branch(
                    graph, info, fn, branch)

    @staticmethod
    def _fork_result_names(info, fn_node: ast.AST) -> Set[str]:
        names: Set[str] = set()
        for node in ast.walk(fn_node):
            if (isinstance(node, ast.Assign)
                    and isinstance(node.value, ast.Call)
                    and info.ctx.resolve(node.value.func) == "os.fork"):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
        return names

    @staticmethod
    def _child_branches(fn_node: ast.AST,
                        fork_names: Set[str]) -> Iterator[ast.If]:
        for node in ast.walk(fn_node):
            if not isinstance(node, ast.If):
                continue
            test = node.test
            if (isinstance(test, ast.Compare)
                    and isinstance(test.left, ast.Name)
                    and test.left.id in fork_names
                    and len(test.ops) == 1
                    and isinstance(test.ops[0], ast.Eq)
                    and len(test.comparators) == 1
                    and isinstance(test.comparators[0], ast.Constant)
                    and test.comparators[0].value == 0):
                yield node

    def _check_child_branch(self, graph, info, fn,
                            branch: ast.If) -> Iterator[Finding]:
        body = ast.Module(body=list(branch.body), type_ignores=[])
        for node, why in self._impure_ops(info.ctx, body):
            yield info.ctx.finding(
                self, node,
                f"forked shard child {why} — parent-visible state "
                f"must travel through the delta")
        # Transitive: project functions the child calls.
        for call in ast.walk(body):
            if not isinstance(call, ast.Call):
                continue
            callee = graph.resolve_call(info, fn, call)
            if callee is None:
                continue
            for qname, node, why in self._closure_impurity(
                    graph, callee):
                yield info.ctx.finding(
                    self, call,
                    f"forked shard child {why} via {qname}() — "
                    f"parent-visible state must travel through the "
                    f"delta")

    def _closure_impurity(self, graph, root
                          ) -> Iterator[Tuple[str, ast.AST, str]]:
        seen: Set[str] = set()
        queue = [root.qname]
        while queue:
            qname = queue.pop()
            if qname in seen:
                continue
            seen.add(qname)
            fn = graph.functions.get(qname)
            if fn is None:
                continue
            fn_info = graph.by_path.get(fn.path)
            if fn_info is not None:
                for node, why in self._impure_ops(
                        fn_info.ctx, fn.node):
                    yield qname, node, why
            summary = graph.summaries.get(qname)
            if summary is not None and summary.global_writes:
                names = ", ".join(sorted(summary.global_writes))
                yield (qname, fn.node,
                       f"mutates module state ({names})")
                # global_writes is already transitive; no need to
                # descend for this fact, but file ops still need the
                # body scan below.
            for callee in sorted(graph.calls.get(qname, ())):
                queue.append(callee)

    @staticmethod
    def _impure_ops(ctx: ModuleContext,
                    tree: ast.AST) -> Iterator[Tuple[ast.AST, str]]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            dotted = ctx.resolve(func)
            if dotted in _OS_FILE_MUTATIONS:
                yield node, f"calls {dotted}"
                continue
            if dotted in _DUMP_TO_HANDLE:
                yield node, f"serialises through {dotted}"
                continue
            if isinstance(func, ast.Attribute):
                if (func.attr == "dump"
                        and terminal_base(func.value) in (
                            "pickle", "json", "marshal")):
                    yield node, "serialises through a dump-to-handle"
                    continue
                if func.attr in ("write_text", "write_bytes"):
                    yield node, f"writes a file via .{func.attr}()"
                    continue
            if (isinstance(func, ast.Name) and func.id == "open"
                    and _open_mode_writes(node)):
                yield node, "opens a file for writing"


def _open_mode_writes(call: ast.Call) -> bool:
    mode: Optional[ast.AST] = None
    if len(call.args) >= 2:
        mode = call.args[1]
    for keyword in call.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    if mode is None:
        return False
    return (isinstance(mode, ast.Constant)
            and isinstance(mode.value, str)
            and bool(set(mode.value) & _WRITE_MODES))


class JournalCodecRule(ProjectRule):
    """RL403 — WAL frames round-trip through the approved codec."""

    rule_id = "RL403"
    severity = Severity.ERROR
    description = ("journal frame payloads must use the approved "
                   "codec, never inline repr/pickle round-trips")
    hint = ("build frame payloads with encode_*() (or json.dumps) and "
            "decode them only inside decode_*() codec functions")

    _SCOPE = "repro/journal/"

    def run_project(self, graph) -> Iterator[Finding]:
        for module in sorted(graph.modules):
            info = graph.modules[module]
            if not info.path.startswith(self._SCOPE):
                continue
            yield from self._check_module(info)

    def _check_module(self, info) -> Iterator[Finding]:
        codec_fns = {fn.node for fn in info.functions.values()
                     if fn.name.startswith(("encode_", "decode_"))}
        for fn in sorted(info.functions.values(),
                         key=lambda f: f.qname):
            if fn.node in codec_fns:
                continue
            yield from self._check_function(info.ctx, fn.node)
        # Module top level (rare, but decode loops can live there).
        top = ast.Module(
            body=[stmt for stmt in info.ctx.tree.body
                  if not isinstance(stmt, (ast.FunctionDef,
                                           ast.AsyncFunctionDef,
                                           ast.ClassDef))],
            type_ignores=[])
        yield from self._check_function(info.ctx, top)

    def _check_function(self, ctx: ModuleContext,
                        fn_node: ast.AST) -> Iterator[Finding]:
        assigns: Dict[str, List[ast.AST]] = {}
        for node in ast.walk(fn_node):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        assigns.setdefault(target.id, []).append(
                            node.value)
        for node in ast.walk(fn_node):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = (func.attr if isinstance(func, ast.Attribute)
                    else func.id if isinstance(func, ast.Name)
                    else None)
            if name in _FRAME_APPENDS:
                for arg in node.args:
                    for origin, banned in self._raw_encodings(
                            ctx, arg, assigns):
                        yield ctx.finding(
                            self, origin,
                            f"frame payload built with raw {banned} "
                            f"outside the codec")
            for banned_node, banned in self._raw_decodes(ctx, node):
                yield ctx.finding(
                    self, banned_node,
                    f"frame payload decoded with raw {banned} outside "
                    f"a decode_*() codec function")

    @staticmethod
    def _raw_encodings(ctx: ModuleContext, arg: ast.AST,
                       assigns: Dict[str, List[ast.AST]]
                       ) -> Iterator[Tuple[ast.AST, str]]:
        trees: List[ast.AST] = [arg]
        if isinstance(arg, ast.Name):
            trees.extend(assigns.get(arg.id, ()))
        for tree in trees:
            for node in ast.walk(tree):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if isinstance(func, ast.Name) and func.id == "repr":
                    yield node, "repr()"
                    continue
                dotted = ctx.resolve(func)
                if dotted in _RAW_ENCODERS_DOTTED:
                    yield node, f"{dotted}()"
                    continue
                if (isinstance(func, ast.Attribute)
                        and func.attr == "dumps"
                        and terminal_base(func.value) in (
                            "pickle", "marshal")):
                    yield node, f"{terminal_base(func.value)}.dumps()"

    @staticmethod
    def _raw_decodes(ctx: ModuleContext, call: ast.Call
                     ) -> Iterator[Tuple[ast.AST, str]]:
        func = call.func
        dotted = ctx.resolve(func)
        if dotted in _RAW_DECODERS_DOTTED:
            yield call, f"{dotted}()"
            return
        if isinstance(func, ast.Name):
            if func.id == "eval":
                yield call, "eval()"
            elif func.id == "literal_eval" and dotted is None:
                yield call, "literal_eval()"
        elif (isinstance(func, ast.Attribute)
              and func.attr in ("loads", "literal_eval")
              and terminal_base(func.value) in ("pickle", "marshal",
                                                "ast")):
            yield call, f"{terminal_base(func.value)}.{func.attr}()"
