"""RL501 — metric label hygiene.

Metric labels index the telemetry registry: every distinct label value
is a new time series, and a label interpolated from free-form data
(URLs, account ids, raw access tokens) is both a cardinality bomb and
a secrets leak waiting for the first Prometheus scrape.  RL501 pins
every label keyword at a ``TELEMETRY.count`` / ``count_many`` /
``observe`` / ``gauge_set`` call site to a *bounded* expression:

* a literal constant (``outcome="ok"``),
* a plain name (``stage=stage`` — bind dynamic values to a local
  first, which both documents the bounded set and keeps the call
  site auditable),
* a simple attribute chain (``network=self.domain``), or
* a call to :func:`repro.oauth.redact.redact_token`, the one
  sanctioned way to put token-derived material on a label.

f-strings, concatenation, ``%``/``.format`` and arbitrary calls
(``str(...)`` included) are flagged: they manufacture unbounded label
values inline, where no reviewer can see the value set.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.findings import Finding, Severity
from repro.lint.rules import ModuleContext, Rule

#: Registry methods whose keyword arguments are metric labels.
_LABEL_METHODS = frozenset({"count", "count_many", "observe", "gauge_set"})

#: Keywords that are part of the method signature, not labels.
_NON_LABEL_KWARGS = frozenset({"value", "prefix"})

#: Import origins that identify the process-global registry.
_REGISTRY_ORIGINS = (
    "repro.telemetry.registry.TELEMETRY",
    "repro.telemetry.TELEMETRY",
)

#: The sanctioned redaction helper (by import origin or bare name).
_REDACT_ORIGINS = frozenset({
    "repro.oauth.redact.redact_token",
    "repro.oauth.redact_token",
})


def _is_simple_chain(node: ast.AST) -> bool:
    """True for ``name`` / ``a.b`` / ``a.b.c`` — loads only."""
    while isinstance(node, ast.Attribute):
        node = node.value
    return isinstance(node, ast.Name)


class MetricLabelRule(Rule):
    rule_id = "RL501"
    severity = Severity.ERROR
    description = "unbounded or unredacted metric label values"
    hint = ("label values must be literals, plain names, simple "
            "attribute chains, or redact_token(...) — bind dynamic "
            "values to a local first; never interpolate into a label")

    # ------------------------------------------------------------------
    def _is_registry_call(self, ctx: ModuleContext,
                          node: ast.Call) -> Optional[str]:
        """The method name when ``node`` targets the telemetry
        registry, else None."""
        func = node.func
        if not (isinstance(func, ast.Attribute)
                and func.attr in _LABEL_METHODS):
            return None
        dotted = ctx.resolve(func.value)
        if dotted in _REGISTRY_ORIGINS:
            return func.attr
        # Direct attribute on a bare TELEMETRY name covers modules that
        # received the registry without importing it (test fixtures,
        # exec'd snippets) — the name is the project-wide convention.
        if (isinstance(func.value, ast.Name)
                and func.value.id == "TELEMETRY"):
            return func.attr
        return None

    def _is_redact_call(self, ctx: ModuleContext, node: ast.Call) -> bool:
        dotted = ctx.resolve(node.func)
        if dotted in _REDACT_ORIGINS:
            return True
        return (isinstance(node.func, ast.Name)
                and node.func.id == "redact_token")

    def _label_ok(self, ctx: ModuleContext, value: ast.AST) -> bool:
        if isinstance(value, ast.Constant):
            return True
        if _is_simple_chain(value):
            return True
        if isinstance(value, ast.Call):
            return self._is_redact_call(ctx, value)
        return False

    # ------------------------------------------------------------------
    def run(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            method = self._is_registry_call(ctx, node)
            if method is None:
                continue
            for keyword in node.keywords:
                if keyword.arg is None:
                    # **labels forwarding: the values are invisible
                    # here, so the bounded-set audit is impossible.
                    yield ctx.finding(
                        self, keyword.value,
                        f"TELEMETRY.{method}() forwards **labels; "
                        "label values cannot be audited at this site")
                    continue
                if keyword.arg in _NON_LABEL_KWARGS:
                    continue
                if not self._label_ok(ctx, keyword.value):
                    kind = type(keyword.value).__name__
                    yield ctx.finding(
                        self, keyword.value,
                        f"label {keyword.arg}= built from {kind} in "
                        f"TELEMETRY.{method}(); interpolated label "
                        "values are unbounded")
