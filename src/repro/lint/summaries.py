"""Function summaries for the project graph.

For every function in the tree we record the facts the cross-module
rules need:

* ``param_sink_flows`` — parameters whose value reaches a token sink
  (log / exception / persist) inside the body.  A *caller* passing a
  tainted value into such a parameter is flagged at the call site
  (RL10x "through a called helper").  Parameters whose very name marks
  them as token-bearing (``access_token`` …) are excluded — those
  bodies are flagged directly at the definition site.
* ``taint_through`` — parameters whose taint survives into the return
  value, so ``digest = fmt(token)`` keeps ``digest`` tainted.
* ``returns_taint`` — the return value carries taint sourced *inside*
  the body (a token-store read, a minted token), independent of any
  parameter.
* ``mutates_platform`` — platform mutation methods the body invokes
  (``*.platform.create_post(...)``), which RL302 uses to flag
  collusion/honeypot code that launders a platform write through a
  helper outside the Graph API.
* ``self_writes`` / ``global_writes`` — the mutation-effect lattice:
  which ``self.X`` attributes and module-level names the function
  writes.  The RL4xx state-coverage rules are built on these.

Summaries are computed to interprocedural convergence by
:mod:`repro.lint.fixpoint` (SCC-ordered, callees first), so all five
facts see through arbitrarily deep helper chains.  The historical
one-level builder is kept as :func:`build_summaries_one_level`
because the tests pin exactly what depth buys.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Set

from repro.lint.taint import (
    TOKEN_PARAM_NAMES,
    TaintWalker,
    TokenTaintSpec,
    attr_chain,
)

#: State-changing methods on the simulated platform.  Reads (feeds,
#: friend lists, page fan-out) are free; writes must flow through the
#: Graph API so scope checks, rate limits and request logging apply.
PLATFORM_MUTATIONS = frozenset({
    "register_account", "suspend_account", "reinstate_account",
    "create_page", "create_post", "like_post", "remove_like",
    "like_page", "comment_on_post", "befriend",
})


def platform_mutation_calls(node: ast.AST) -> Iterator[ast.Call]:
    """Call sites under ``node`` that write to the platform directly.

    Matches ``<anything>.platform.<mutation>(...)`` and
    ``<anything>._platform.<mutation>(...)`` — the attribute chain must
    actually pass through a ``platform`` segment, so ``api.create_post``
    (the sanctioned route) never matches.
    """
    for child in ast.walk(node):
        if not isinstance(child, ast.Call):
            continue
        func = child.func
        if not isinstance(func, ast.Attribute):
            continue
        if func.attr not in PLATFORM_MUTATIONS:
            continue
        chain = attr_chain(func.value)
        if any(part in ("platform", "_platform") for part in chain):
            yield child


@dataclass
class FunctionSummary:
    """What one function does with its parameters and its state."""

    qname: str
    params: List[str]
    #: param name -> sink kinds ("log" | "exception" | "persist")
    param_sink_flows: Dict[str, Set[str]] = field(default_factory=dict)
    #: params whose taint reaches the return value
    taint_through: Set[str] = field(default_factory=set)
    #: platform mutation methods invoked in the body or any callee
    mutates_platform: Set[str] = field(default_factory=set)
    #: ``self.X`` attributes written, directly or via self.method()
    self_writes: Set[str] = field(default_factory=set)
    #: module-level names written, directly or via any callee
    global_writes: Set[str] = field(default_factory=set)
    #: return value carries taint sourced inside the body
    returns_taint: bool = False


def build_summaries(graph) -> None:
    """Populate ``graph.summaries`` to interprocedural convergence."""
    from repro.lint.fixpoint import build_summaries as _fixpoint

    _fixpoint(graph)


def build_summaries_one_level(graph) -> None:
    """The pre-fixpoint builder: every function summarised against an
    empty table, so helper-of-a-helper flows are invisible.  Kept so
    tests can pin the flows only the fixpoint catches."""
    table: Dict[str, FunctionSummary] = {}
    for qname, fn in graph.functions.items():
        info = graph.by_path.get(fn.path)
        if info is None:
            continue
        ctx = info.ctx
        params = fn.params
        summary = FunctionSummary(qname=qname, params=list(params))
        spec = TokenTaintSpec()
        initial = {param: {param} for param in params}
        walker = TaintWalker(ctx, spec, initial)
        walker._function = fn
        walker.walk(fn.node.body)
        for _node, kind, origins in walker.sink_hits:
            base_kind = kind.split(":", 1)[0]
            for origin in origins:
                if origin in params and origin not in TOKEN_PARAM_NAMES:
                    summary.param_sink_flows.setdefault(
                        origin, set()).add(base_kind)
        summary.taint_through = {
            origin for origin in walker.return_origins if origin in params
        }
        summary.mutates_platform = {
            call.func.attr for call in platform_mutation_calls(fn.node)
        }
        table[qname] = summary
    graph.summaries = table
