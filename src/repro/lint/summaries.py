"""One-level function summaries for the project graph.

For every function in the tree we record three facts the cross-module
rules need:

* ``param_sink_flows`` — parameters whose value reaches a token sink
  (log / exception / persist) inside the body.  A *caller* passing a
  tainted value into such a parameter is flagged at the call site
  (RL10x "through a called helper").  Parameters whose very name marks
  them as token-bearing (``access_token`` …) are excluded — those
  bodies are flagged directly at the definition site.
* ``taint_through`` — parameters whose taint survives into the return
  value, so ``digest = fmt(token)`` keeps ``digest`` tainted.
* ``mutates_platform`` — platform mutation methods the body invokes
  directly (``*.platform.create_post(...)``), which RL302 uses to flag
  collusion/honeypot code that launders a platform write through a
  helper outside the Graph API.

Summaries are strictly intraprocedural (one level): they are computed
with an empty summary table, so a helper-of-a-helper does not
propagate.  That trade keeps the analysis deterministic, order
independent and surprise free.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Set

from repro.lint.taint import (
    TOKEN_PARAM_NAMES,
    TaintWalker,
    TokenTaintSpec,
    attr_chain,
)

#: State-changing methods on the simulated platform.  Reads (feeds,
#: friend lists, page fan-out) are free; writes must flow through the
#: Graph API so scope checks, rate limits and request logging apply.
PLATFORM_MUTATIONS = frozenset({
    "register_account", "suspend_account", "reinstate_account",
    "create_page", "create_post", "like_post", "remove_like",
    "like_page", "comment_on_post", "befriend",
})


def platform_mutation_calls(node: ast.AST) -> Iterator[ast.Call]:
    """Call sites under ``node`` that write to the platform directly.

    Matches ``<anything>.platform.<mutation>(...)`` and
    ``<anything>._platform.<mutation>(...)`` — the attribute chain must
    actually pass through a ``platform`` segment, so ``api.create_post``
    (the sanctioned route) never matches.
    """
    for child in ast.walk(node):
        if not isinstance(child, ast.Call):
            continue
        func = child.func
        if not isinstance(func, ast.Attribute):
            continue
        if func.attr not in PLATFORM_MUTATIONS:
            continue
        chain = attr_chain(func.value)
        if any(part in ("platform", "_platform") for part in chain):
            yield child


@dataclass
class FunctionSummary:
    """What one function does with its parameters."""

    qname: str
    params: List[str]
    #: param name -> sink kinds ("log" | "exception" | "persist")
    param_sink_flows: Dict[str, Set[str]] = field(default_factory=dict)
    #: params whose taint reaches the return value
    taint_through: Set[str] = field(default_factory=set)
    #: platform mutation methods invoked directly in the body
    mutates_platform: Set[str] = field(default_factory=set)


def build_summaries(graph) -> None:
    """Populate ``graph.summaries`` for every indexed function.

    Runs with an empty summary table (see module docstring), then
    installs the finished table atomically.
    """
    table: Dict[str, FunctionSummary] = {}
    for qname, fn in graph.functions.items():
        info = graph.by_path.get(fn.path)
        if info is None:
            continue
        ctx = info.ctx
        params = fn.params
        summary = FunctionSummary(qname=qname, params=list(params))
        spec = TokenTaintSpec()
        initial = {param: {param} for param in params}
        walker = TaintWalker(ctx, spec, initial)
        walker._function = fn
        walker.walk(fn.node.body)
        for _node, kind, origins in walker.sink_hits:
            base_kind = kind.split(":", 1)[0]
            for origin in origins:
                if origin in params and origin not in TOKEN_PARAM_NAMES:
                    summary.param_sink_flows.setdefault(
                        origin, set()).add(base_kind)
        summary.taint_through = {
            origin for origin in walker.return_origins if origin in params
        }
        summary.mutates_platform = {
            call.func.attr for call in platform_mutation_calls(fn.node)
        }
        table[qname] = summary
    graph.summaries = table
