"""reprolint — project-aware determinism & discipline analysis.

The simulator's headline guarantees (byte-identical seeded runs,
empty-fault-plan identity, batch/scalar and parallel/serial
equivalence) rest on conventions that no runtime test can see a
violation of until it has already perturbed an event stream: time must
come from the sim clock, randomness from named RNG streams, iteration
from ordered sources — and, per the paper's own findings, access-token
values must never escape into telemetry.  ``reprolint`` turns those
conventions into a static gate built on a project graph (symbol table,
import/call graph) with function summaries computed to interprocedural
convergence (SCC-ordered fixpoint over the call graph, including a
mutation-effect lattice) and a flow-sensitive taint engine.

Rules
-----
RL000  parse errors (unparsable files are findings, not crashes)
RL001  no wall-clock reads (``time.time``/``monotonic``/``sleep``,
       ``datetime.now``/``utcnow``) outside the allowlisted perf shell
RL002  no global/unseeded randomness (module-level ``random.*`` calls,
       ``random.Random()`` without a seed, ``SystemRandom``)
RL003  no nondeterministic ordering feeding iteration (``set``
       literals/calls iterated unsorted, ``id()``-keyed sorts,
       unsorted ``os.listdir``/``glob``/``iterdir``)
RL004  no entropy/environment leaks (``uuid1``/``uuid4``, ``secrets``,
       ``os.urandom``, ``os.environ`` reads, salted builtin ``hash()``)
RL005  exception discipline (no bare/broad ``except`` that swallows
       without re-raising, using the bound exception, or logging)
RL101  token taint: token values must not reach logging sinks
RL102  token taint: token values must not reach exception messages or
       ``error_envelope`` renderers
RL103  token taint: token values must not be persisted to checkpoints
       or exported experiment artifacts
RL201  no RNG stream construction at module scope
RL202  no cross-entity RNG stream sharing (duplicate literal stream
       names, handing ``self.rng`` to another entity, reaching into
       ``other.rng``)
RL203  no raw ``%``/``//``/``/`` arithmetic on sim-clock readings
       outside ``repro/sim/``
RL301  collusion/honeypot code must not mutate the platform directly
RL302  …nor launder the mutation through a helper outside graphapi
RL401  snapshot-protocol classes (export_*/install_*), capture/install
       pairs and *Checkpoint dataclasses must cover every mutable
       attribute / captured key / field
RL402  *Delta dataclasses must pass and consume every field, and
       forked shard children must not write parent-visible state
       outside the delta
RL403  journal frame payloads must round-trip through the approved
       codec (encode_*/decode_* or json), never inline repr/pickle

Token taint is cleared by the registered redactor
``repro.oauth.redact.redact_token`` — log/raise/persist the stable
8-char digest, never the raw token.  Inline
``# reprolint: disable=RL00x — why`` pragmas suppress a line;
``tools/reprolint_baseline.json`` grandfathers known findings (they
warn; anything new fails).  Run via ``repro lint`` or
``python -m repro.lint``; ``--changed [REF]`` lints only modified
files, ``--format sarif`` emits SARIF 2.1.0.
"""

from repro.lint.engine import LintEngine, LintReport, lint_source
from repro.lint.findings import Finding, Severity
from repro.lint.graph import ProjectGraph
from repro.lint.rules import DEFAULT_ALLOWLIST, default_rules

__all__ = [
    "DEFAULT_ALLOWLIST",
    "Finding",
    "LintEngine",
    "LintReport",
    "ProjectGraph",
    "Severity",
    "default_rules",
    "lint_source",
]
