"""reprolint — AST-based determinism & discipline analysis.

The simulator's headline guarantees (byte-identical seeded runs,
empty-fault-plan identity, batch/scalar and parallel/serial
equivalence) rest on conventions that no runtime test can see a
violation of until it has already perturbed an event stream: time must
come from the sim clock, randomness from named RNG streams, iteration
from ordered sources.  ``reprolint`` turns those conventions into a
static gate.

Rules
-----
RL001  no wall-clock reads (``time.time``/``monotonic``/``sleep``,
       ``datetime.now``/``utcnow``) outside the allowlisted perf shell
RL002  no global/unseeded randomness (module-level ``random.*`` calls,
       ``random.Random()`` without a seed, ``SystemRandom``)
RL003  no nondeterministic ordering feeding iteration (``set``
       literals/calls iterated unsorted, ``id()``-keyed sorts,
       unsorted ``os.listdir``/``glob``/``iterdir``)
RL004  no entropy/environment leaks (``uuid1``/``uuid4``, ``secrets``,
       ``os.urandom``, ``os.environ`` reads, salted builtin ``hash()``)
RL005  exception discipline (no bare/broad ``except`` that swallows
       without re-raising, using the bound exception, or logging)

Inline ``# reprolint: disable=RL00x — why`` pragmas suppress a line;
``tools/reprolint_baseline.json`` grandfathers known findings (they
warn; anything new fails).  Run via ``repro lint`` or
``python -m repro.lint``.
"""

from repro.lint.engine import LintEngine, LintReport, lint_source
from repro.lint.findings import Finding, Severity
from repro.lint.rules import DEFAULT_ALLOWLIST, default_rules

__all__ = [
    "DEFAULT_ALLOWLIST",
    "Finding",
    "LintEngine",
    "LintReport",
    "Severity",
    "default_rules",
    "lint_source",
]
