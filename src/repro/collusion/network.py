"""A collusion network: token harvesting, like/comment delivery, evasion.

The network's behaviour follows §3/§4/§6 of the paper:

* **Harvesting** — members join through the OAuth implicit flow of a
  susceptible application and paste the access token from the redirect
  fragment into the network's site; the network stores it in a token DB.
* **Delivery** — a like request is served by sampling tokens from the DB
  (roughly uniformly for the big pools; some networks bias toward a "hot
  set" of recently used tokens) and issuing Graph API like calls from the
  network's server IPs.
* **Adaptation** — dead tokens are dropped on discovery; sustained
  rate-limit errors make a hot-set network fall back to uniform sampling
  (the §6.1 bounce-back); exhausted or blocked IPs are rotated out.
* **Replenishment** — new members trickle in and members whose tokens
  died re-join (the §6.2 bounce-back).
"""

from __future__ import annotations

import math
import random
from bisect import bisect
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.collusion.comments import CommentDictionary
from repro.collusion.monetization import (
    MonetizationProfile,
    default_premium_plans,
)
from repro.collusion.profiles import CollusionNetworkProfile, calibrate_pool_size
from repro.faults.retry import RetryPolicy
from repro.graphapi.errors import GraphApiError, TransientApiError
from repro.netsim.pools import IpPool
from repro.oauth.errors import InvalidTokenError, OAuthError
from repro.oauth.server import AuthorizationRequest
from repro.sanitizer.streams import hot_draw_bindings
from repro.socialnet.errors import SocialNetworkError
from repro.telemetry.registry import TELEMETRY

#: try_* result codes that mark a retryable (injected) failure.
_TRANSIENT_CODES = ("transient", "timeout")


@dataclass
class DeliveryReport:
    """Outcome of serving one like/comment request."""

    requested: int
    delivered: int
    attempts: int
    dead_tokens_dropped: int = 0
    rate_limited: int = 0
    ip_limited: int = 0
    blocked: int = 0
    other_failures: int = 0
    #: Transient API failures that survived the retry budget.
    transient_failures: int = 0
    #: Retry attempts spent on transient failures during this delivery.
    retries: int = 0
    #: Retry loops that gave up with attempts left to burn but the
    #: elapsed-time budget (``RetryPolicy.max_elapsed``) exhausted...
    giveups_deadline: int = 0
    #: ...vs loops that burned the full attempt budget.
    giveups_attempts: int = 0
    halted: bool = False  # no usable IPs left: delivery cannot continue

    @property
    def succeeded(self) -> bool:
        return self.delivered >= self.requested


class MemberDirectory:
    """Shared registry of colluding accounts across all networks.

    Implements cross-network membership overlap: the paper found 1,150,782
    memberships but only 1,008,021 unique accounts (~12% of joins are
    accounts already colluding elsewhere).
    """

    def __init__(self, platform, geo, rng: random.Random,
                 overlap_rate: float = 0.12) -> None:
        if not 0.0 <= overlap_rate < 1.0:
            raise ValueError(f"bad overlap rate: {overlap_rate}")
        self._platform = platform
        self._geo = geo
        self._rng = rng
        self._overlap_rate = overlap_rate
        self._accounts: List[str] = []
        self._counter = 0

    def __len__(self) -> int:
        return len(self._accounts)

    def draw_member(self, exclude: Set[str],
                    country_mix: Optional[Sequence[Tuple[str, float]]] = None) -> str:
        """An account for a new membership: usually fresh, sometimes an
        existing colluder from another network."""
        if self._accounts and self._rng.random() < self._overlap_rate:
            for _ in range(8):  # rejection-sample around exclusions
                candidate = self._rng.choice(self._accounts)
                if candidate not in exclude:
                    return candidate
        return self._create_account(country_mix)

    def _create_account(self, country_mix) -> str:
        self._counter += 1
        country = self._geo.sample_country(self._rng, country_mix)
        account = self._platform.register_account(  # reprolint: disable=RL301 — signup is the platform's first-party web flow; no app token is involved, so there is nothing for the Graph API to meter
            f"Colluding User {self._counter}", country=country)
        self._accounts.append(account.account_id)
        return account.account_id


# The three journal attributes are deliberately outside the __dict__
# snapshot (_SHARD_SKIP_FIELDS): adopt_state replays the child's
# drop journal onto the parent's own dead_members / operation journal,
# so shipping the raw containers across the process boundary would
# double-apply every entry.
class CollusionNetwork:  # reprolint: disable=RL401 — dead_members/_shard_drop_journal/_member_op_journal are journal-replayed by adopt_state, never shipped raw
    """One autoliker service wired into a simulated world."""

    def __init__(self, world, profile: CollusionNetworkProfile,
                 directory: MemberDirectory, ip_pool: IpPool,
                 short_url_slug: Optional[str] = None) -> None:
        self.world = world
        self.profile = profile
        self.directory = directory
        self.ip_pool = ip_pool
        self.short_url_slug = short_url_slug
        self.domain = profile.domain
        self.app = world.apps.get(profile.app_id)
        self.rng = world.rng.stream(f"network:{profile.domain}")
        # Bound-method caches for the sampling hot path; the rng instance
        # never changes (setstate mutates it in place) and the profile is
        # static, so these stay valid for the network's lifetime.  Bound
        # through the sanitizer shell so the inlined rejection loops
        # draw raw (byte-identical, unhooked) even while tracing — see
        # hot_draw_bindings on the per-draw overhead budget.
        self._rng_random, self._getrandbits = hot_draw_bindings(self.rng)
        self._reuse_bias = profile.token_reuse_bias

        # Token database: member account id -> token string, plus a list
        # for O(1) uniform sampling with swap-pop removal.
        self.token_db: Dict[str, str] = {}
        self._member_list: List[str] = []
        self._member_index: Dict[str, int] = {}
        self.dead_members: Set[str] = set()
        self.member_countries: Dict[str, str] = {}

        # Hot-set sampling state (§6.1 adaptation): a sticky working set
        # of cached tokens the network prefers, refreshed daily.
        self._hot_members: List[str] = []
        self._uniform_mode = profile.token_reuse_bias <= 0.0
        self._rate_error_day_streak = 0
        self._rate_errors_today = 0

        # Availability.
        self._outage_windows: List[Tuple[int, int]] = []
        self.replenishment_enabled = False
        #: Anonymous member requests served per day through the cheap
        #: charge-only path (enabled alongside replenishment).
        self.background_serving_enabled = False

        # Daily request accounting (free-plan limits).
        self._requests_today: Dict[str, int] = {}
        self._accounted_day = -1

        # Batched-delivery health: after a failed all-or-nothing chunk
        # (token invalidation storms, limit pressure) stay on the scalar
        # path for a while instead of paying sample-rollback-replay on
        # every chunk; the backoff doubles while failures persist.
        # ``batch_requests_enabled = False`` forces the scalar path
        # everywhere (the two are RNG-stream equivalent; the flag exists
        # for equivalence tests and debugging).
        self.batch_requests_enabled = True
        self._batch_cooldown = 0
        self._batch_backoff = self._BATCH_CHUNK
        # Resilience: transient API failures (fault injection) are
        # retried with deterministic backoff and a per-endpoint circuit
        # breaker; a chunk that keeps failing degrades the network to
        # the scalar path for the rest of the day.  All of this is inert
        # (and free) while the world has no fault plan.
        self.retry_policy = RetryPolicy()
        self._batch_fail_streak = 0
        self._batch_degraded_day = -1
        # Drop journal for shard children (see export_state); None means
        # not recording.
        self._shard_drop_journal: Optional[List[str]] = None
        # Membership-op journal for campaign checkpoints: an ordered
        # record of every ("store", id) / ("drop", id) mutation of
        # ``dead_members`` since recording began.  A crash-recovery
        # resume replays it onto the rebuilt base set, reproducing both
        # the set's *contents* and its *iteration order* (which feeds
        # the replenishment shuffle) without ever pickling the set.
        self._member_op_journal: Optional[List[Tuple[str, str]]] = None

        # IP health for today.
        self._exhausted_ips: Set[str] = set()
        self._blocked_asns: Set[int] = set()
        self._ip_weights = self._make_ip_weights()
        self._usable_ips: Optional[List[str]] = None
        self._usable_cum_weights: Optional[List[float]] = None

        #: The operator behind this network (see collusion.ownership);
        #: when set, a slice of background activity promotes their content.
        self.owner = None

        # Premium auto-delivery bookkeeping: member -> last boosted post.
        self._auto_boosted: Dict[str, str] = {}

        # Outgoing-activity machinery (requesters our tokens serve).
        self._requester_pool: List[Optional[str]] = []
        self._page_likes_done: Dict[str, Set[str]] = {}
        self._pages: List[str] = []

        # Comments.
        self.comment_dictionary: Optional[CommentDictionary] = None
        if profile.comment_style is not None:
            self.comment_dictionary = CommentDictionary(
                profile.comment_style,
                world.rng.stream(f"comments:{profile.domain}"))

        # Monetization.
        self.monetization = MonetizationProfile(
            domain=profile.domain,
            free_likes_per_request=profile.likes_per_request,
            premium_plans=default_premium_plans(profile.likes_per_request),
        )

        # Lifetime counters.
        self.total_likes_delivered = 0
        self.total_comments_delivered = 0
        self.total_requests_served = 0
        self.total_joins = 0

    # ------------------------------------------------------------------
    # Availability
    # ------------------------------------------------------------------
    def schedule_outage(self, start_ts: int, end_ts: int) -> None:
        """Take the site down for [start_ts, end_ts)."""
        if end_ts <= start_ts:
            raise ValueError("outage must end after it starts")
        self._outage_windows.append((start_ts, end_ts))

    def in_scheduled_outage(self) -> bool:
        now = self.world.clock.now()
        return any(start <= now < end
                   for start, end in self._outage_windows)

    def is_available(self) -> bool:
        if self.in_scheduled_outage():
            return False
        if self.profile.outage_rate > 0 and (
                self.rng.random() < self.profile.outage_rate):
            return False
        return True

    # ------------------------------------------------------------------
    # Membership / token harvesting
    # ------------------------------------------------------------------
    def member_count(self) -> int:
        return len(self._member_list)

    def is_member(self, account_id: str) -> bool:
        return (account_id in self.token_db
                or account_id in self.dead_members)

    def _country_mix(self):
        # Member countries follow the site's visitor geography; reuse the
        # default platform mix unless the network is strongly regional.
        return None

    def join(self, account_id: Optional[str] = None) -> str:
        """One user joins: click the short URL, install the app through
        the implicit flow, paste the token into the site.  Returns the
        member's account id."""
        if account_id is None:
            account_id = self.directory.draw_member(
                exclude=set(self.token_db), country_mix=self._country_mix())
        country = self.world.platform.get_account(account_id).country
        if self.short_url_slug is not None:
            self.world.shortener.click(
                self.short_url_slug, referrer=self.domain, country=country)
        token_string = self._obtain_token(account_id)
        self._store_member(account_id, token_string, country)
        self.total_joins += 1
        return account_id

    def _obtain_token(self, account_id: str) -> str:
        """The §3 workflow: reuse the app's live token if the user already
        installed it (e.g. via another collusion network), else run the
        client-side flow and lift the token from the redirect fragment."""
        existing = self.world.tokens.live_token_for(
            account_id, self.app.app_id)
        if existing is not None:
            return existing.token
        result = self.world.auth_server.authorize(
            AuthorizationRequest(
                app_id=self.app.app_id,
                redirect_uri=self.app.redirect_uri,
                response_type="token",
                scope=self.app.approved_permissions,
            ),
            account_id,
        )
        token_string = result.token_from_fragment()
        if token_string is None:  # pragma: no cover - defensive
            raise OAuthError("implicit flow returned no token")
        return token_string

    def _store_member(self, account_id: str, token_string: str,
                      country: str) -> None:
        self.dead_members.discard(account_id)
        if self._member_op_journal is not None:
            self._member_op_journal.append(("store", account_id))
        if account_id not in self.token_db:
            self._member_index[account_id] = len(self._member_list)
            self._member_list.append(account_id)
        self.token_db[account_id] = token_string
        self.member_countries[account_id] = country

    def _drop_member(self, account_id: str) -> None:
        """Remove a member whose token proved dead (swap-pop)."""
        if account_id not in self.token_db:
            return
        del self.token_db[account_id]
        idx = self._member_index.pop(account_id)
        last = self._member_list.pop()
        if last != account_id:
            self._member_list[idx] = last
            self._member_index[last] = idx
        self.dead_members.add(account_id)
        if self._member_op_journal is not None:
            self._member_op_journal.append(("drop", account_id))
        if self._shard_drop_journal is not None:
            self._shard_drop_journal.append(account_id)

    def refresh_all_tokens(self) -> int:
        """Re-harvest tokens from every member whose token is no longer
        live (expired or invalidated).

        Models the steady state of a long-running network: members renew
        their 2-month tokens as they keep using the service.  The
        countermeasure campaign calls this once at start, mirroring the
        paper's re-milking months after the original measurement, when
        the networks were at full strength."""
        refreshed = 0
        stale = [m for m in self._member_list
                 if self.world.tokens.live_token_for(
                     m, self.app.app_id) is None]
        stale.extend(list(self.dead_members))
        for account_id in stale:
            self.join(account_id)
            refreshed += 1
        return refreshed

    def build_membership(self, count: int) -> int:
        """Bulk-recruit ``count`` members (initial pool construction)."""
        for _ in range(count):
            self.join()
        return self.member_count()

    # ------------------------------------------------------------------
    # Shard transfer (see repro.countermeasures.sharding)
    # ------------------------------------------------------------------
    #: Fields never shipped across the shard process boundary: shared
    #: subsystems owned by the parent world, immutable wiring, the
    #: bound-method RNG shortcuts (rebuilt on adoption), and
    #: ``dead_members`` — a set whose *iteration order* feeds the
    #: replenishment join order, and which a pickle round-trip would
    #: silently reorder (the rebuilt set lacks the original's internal
    #: layout history).  Shard children journal their drops instead and
    #: the parent replays the adds on its own set object, whose layout
    #: matches the child's pre-fork.
    _SHARD_SKIP_FIELDS = frozenset((
        "world", "directory", "ip_pool", "app", "profile",
        "comment_dictionary", "_rng_random", "_getrandbits",
        "dead_members", "_shard_drop_journal", "_member_op_journal",
    ))

    def export_state(self) -> dict:
        """Every mutable, network-owned field, as a picklable dict."""
        skip = self._SHARD_SKIP_FIELDS
        return {key: value for key, value in self.__dict__.items()
                if key not in skip}

    def adopt_state(self, state: dict,
                    dropped: Sequence[str] = ()) -> None:
        """Install :meth:`export_state` output (including the RNG, so
        the adopted stream continues exactly where the shard left it).
        ``dropped`` replays the shard's member drops, in order, onto
        this process's own ``dead_members`` set."""
        self.__dict__.update(state)
        self._rng_random, self._getrandbits = hot_draw_bindings(self.rng)
        for account_id in dropped:
            self.dead_members.add(account_id)
            if self._member_op_journal is not None:
                self._member_op_journal.append(("drop", account_id))

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def _sample_member(self, exclude: Set[str]) -> Optional[str]:
        """Pick a member token to spend.

        Hot-set networks prefer their cached working set
        (``token_reuse_bias`` of the time) and fall back to the full DB
        when the working set is exhausted for this request; if random
        probing keeps hitting exclusions (tiny pools), a linear sweep
        finds any remaining member.
        """
        members = self._member_list
        if not members:
            return None
        if self._uniform_mode:
            hot = None
        else:
            hot = self._hot_members
            if not hot:
                self._refresh_hot_set()
                hot = self._hot_members
        # rng.choice(seq) is seq[rng._randbelow(len(seq))], and
        # _randbelow(n) is a rejection loop over getrandbits(n.bit_length()).
        # Inlining that loop draws the identical bit stream while dropping
        # two Python frames per probe in the simulator's hottest function.
        getrandbits = self._getrandbits
        if hot and self._rng_random() < self._reuse_bias:
            token_db = self.token_db
            size = len(hot)
            bits = size.bit_length()
            for _ in range(4):
                r = getrandbits(bits)
                while r >= size:
                    r = getrandbits(bits)
                member = hot[r]
                if member not in exclude and member in token_db:
                    return member
        size = len(members)
        bits = size.bit_length()
        for _ in range(10):
            r = getrandbits(bits)
            while r >= size:
                r = getrandbits(bits)
            member = members[r]
            if member not in exclude:
                return member
        # Small-pool fallback: deterministic sweep from a random offset.
        start = getrandbits(bits)
        while start >= size:
            start = getrandbits(bits)
        for i in range(size):
            member = members[(start + i) % size]
            if member not in exclude:
                return member
        return None

    def _refresh_hot_set(self) -> None:
        """Re-draw the cached working set of tokens (done daily)."""
        if self._uniform_mode or not self._member_list:
            self._hot_members = []
            return
        size = min(self.profile.hot_set_size, len(self._member_list))
        self._hot_members = self.rng.sample(self._member_list, size)

    def _note_use(self, member: str) -> None:
        """Hook kept for symmetry; the sticky hot set needs no per-use
        bookkeeping."""

    def _make_ip_weights(self) -> List[float]:
        n = len(self.ip_pool.addresses)
        if self.profile.ip_usage == "uniform":
            return [1.0] * n
        # Zipf-ish: a few IPs carry the vast majority of traffic (Fig 8a).
        return [1.0 / (i + 1) for i in range(n)]

    def _invalidate_ip_cache(self) -> None:
        self._usable_ips = None
        self._usable_cum_weights = None

    def _pick_ip(self) -> Optional[str]:
        if self._usable_ips is None:
            usable = [
                (addr, w) for addr, w in zip(self.ip_pool.addresses,
                                             self._ip_weights)
                if addr not in self._exhausted_ips
                and (self.world.as_registry.asn_of(addr)
                     not in self._blocked_asns)
            ]
            self._usable_ips = [a for a, _ in usable]
            cum: List[float] = []
            total = 0.0
            for _, weight in usable:
                total += weight
                cum.append(total)
            self._usable_cum_weights = cum
        usable = self._usable_ips
        if not usable:
            return None
        # Inlined rng.choices(..., cum_weights=..., k=1)[0]: one uniform
        # draw + one bisect over the cached cumulative weights, consuming
        # the identical RNG stream without list/validation overhead.
        cum = self._usable_cum_weights
        return usable[bisect(cum, self._rng_random() * cum[-1],
                             0, len(usable) - 1)]

    # ------------------------------------------------------------------
    # Request accounting & gates
    # ------------------------------------------------------------------
    def _roll_day(self) -> None:
        today = self.world.clock.day()
        if today != self._accounted_day:
            self._accounted_day = today
            self._requests_today.clear()
            self._exhausted_ips.clear()
            self._invalidate_ip_cache()

    def request_allowed(self, requester_id: str) -> bool:
        """Free-plan daily limits (djliker/monkeyliker cap at 10/day)."""
        self._roll_day()
        limit = self.profile.daily_request_limit
        if limit is None:
            return True
        return self._requests_today.get(requester_id, 0) < limit

    def _charge_request(self, requester_id: str) -> None:
        self._roll_day()
        self._requests_today[requester_id] = (
            self._requests_today.get(requester_id, 0) + 1)

    # ------------------------------------------------------------------
    # Like / comment delivery
    # ------------------------------------------------------------------
    def submit_like_request(self, requester_id: str,
                            post_id: str) -> DeliveryReport:
        """A member asks for likes on their post."""
        quota = self.monetization.likes_per_request_for(requester_id)
        if not self.is_member(requester_id):
            raise PermissionError(
                f"{requester_id} is not a member of {self.domain}")
        if not self.is_available() or not self.request_allowed(requester_id):
            return DeliveryReport(requested=quota, delivered=0, attempts=0)
        self._charge_request(requester_id)
        report = self._deliver_likes(post_id, quota,
                                     exclude={requester_id})
        self.total_requests_served += 1
        return report

    def submit_comment_request(self, requester_id: str,
                               post_id: str) -> DeliveryReport:
        """A member asks for auto-comments on their post."""
        if self.comment_dictionary is None:
            raise PermissionError(
                f"{self.domain} does not provide auto-comments")
        quota = self.profile.comments_per_post
        if not self.is_member(requester_id):
            raise PermissionError(
                f"{requester_id} is not a member of {self.domain}")
        if not self.is_available() or not self.request_allowed(requester_id):
            return DeliveryReport(requested=quota, delivered=0, attempts=0)
        self._charge_request(requester_id)
        return self._deliver_comments(post_id, quota,
                                      exclude={requester_id})

    def deliver_followup(self, requester_id: str, post_id: str,
                         count: int) -> DeliveryReport:
        """Finish a previously short delivery (client-side retry).

        The milker schedules this when a like request came back short
        with transient failures: the network tops the post up without
        charging a new request against the member's daily quota.
        """
        if count <= 0 or not self.is_available():
            return DeliveryReport(requested=count, delivered=0, attempts=0)
        return self._deliver_likes(post_id, count, exclude={requester_id})

    #: Pairs sampled per optimistic batch chunk.
    _BATCH_CHUNK = 48
    #: Don't bother batching tails smaller than this.
    _BATCH_MIN = 8
    #: Backoff ceiling, in scalar iterations between batch probes.
    _BATCH_BACKOFF_MAX = 4096
    #: Consecutive chunk failures before degrading to scalar delivery
    #: for the rest of the day (fault-plan runs only).
    _BATCH_DEGRADE_STREAK = 6

    def _batch_failed(self) -> None:
        self._batch_cooldown = self._batch_backoff
        self._batch_backoff = min(self._batch_backoff * 2,
                                  self._BATCH_BACKOFF_MAX)
        if self.world.faults is not None:
            self._batch_fail_streak += 1
            if self._batch_fail_streak >= self._BATCH_DEGRADE_STREAK:
                day = self.world.clock.day()
                if self._batch_degraded_day != day and TELEMETRY.enabled:
                    TELEMETRY.count("wave_degradations_total",
                                    network=self.domain)
                self._batch_degraded_day = day

    def _batching_active(self) -> bool:
        """Whether the all-or-nothing fast path should be probed."""
        return (self.batch_requests_enabled
                and self._batch_degraded_day != self.world.clock.day())

    def _deliver_likes(self, post_id: str, quota: int,
                       exclude: Set[str]) -> DeliveryReport:
        report = DeliveryReport(requested=quota, delivered=0, attempts=0)
        used: Set[str] = set(exclude)
        budget = max(1, int(quota * self.profile.retry_factor))
        if self._batching_active():
            self._deliver_likes_wave(post_id, quota, budget, used, report)
        else:
            self._deliver_likes_scalar(post_id, quota, budget, used, report)
        self.total_likes_delivered += report.delivered
        if TELEMETRY.enabled:
            self._report_delivery_telemetry(report)
        return report

    def _report_delivery_telemetry(self, report: DeliveryReport) -> None:
        """Mirror the report's retry/breaker tallies into the metrics
        registry so ``repro run --json`` and the Prometheus export agree
        with the DeliveryReport the caller sees."""
        domain = self.domain
        TELEMETRY.count("delivery_requested_total", report.requested,
                        network=domain)
        TELEMETRY.count("delivery_delivered_total", report.delivered,
                        network=domain)
        TELEMETRY.count("delivery_attempts_total", report.attempts,
                        network=domain)
        if report.retries:
            TELEMETRY.count("delivery_retries_total", report.retries,
                            network=domain)
        if report.giveups_attempts:
            TELEMETRY.count("delivery_giveups_total",
                            report.giveups_attempts,
                            network=domain, reason="attempts")
        if report.giveups_deadline:
            TELEMETRY.count("delivery_giveups_total",
                            report.giveups_deadline,
                            network=domain, reason="deadline")

    def _deliver_likes_scalar(self, post_id: str, quota: int, budget: int,
                              used: Set[str],
                              report: DeliveryReport) -> None:
        """The per-request delivery loop: one :meth:`GraphApi.try_like_post`
        round-trip per sampled member.

        This is the wave path's verification oracle — a wave run must
        produce this loop's exact RNG stream, log rows and report (see
        tests/test_batch_equivalence.py) — and the live path whenever
        batching is disabled or degraded for the day."""
        while (report.delivered < quota and report.attempts < budget
               and not report.halted):
            if self._batch_cooldown > 0:
                self._batch_cooldown -= 1
            report.attempts += 1
            member = self._sample_member(used)
            if member is None:
                break
            if not self._perform_like(member, post_id, report):
                continue
            used.add(member)
            report.delivered += 1

    def _deliver_likes_wave(self, post_id: str, quota: int, budget: int,
                            used: Set[str], report: DeliveryReport) -> None:
        """Planned-wave delivery: the whole round in bulk admission.

        Fault-free there is exactly one wave — every entry flows through
        one :class:`~repro.graphapi.api.DeliveryWave` with memoized
        token/limiter state, and the log rows and window hits land in
        one flush.  Under an active fault plan the round is paced in
        chunk-sized segments: each segment rolls the plan's chunk rules
        (on the dedicated chunk stream) before it opens, a firing rule
        trips the usual circuit breaker — cooldown with exponential
        backoff, served through the scalar oracle so the per-entry
        stream stays byte-identical — and a backoff streak degrades the
        network to scalar delivery for the rest of the day."""
        inj = self.world.faults
        api = self.world.api
        if inj is None:
            wave = api.delivery_wave(post_id)
            try:
                self._wave_like_run(wave, -1, quota, budget, used, report)
            finally:
                wave.finish()
            return
        while (report.delivered < quota and report.attempts < budget
               and not report.halted):
            if self._batch_degraded_day == self.world.clock.day():
                self._deliver_likes_scalar(post_id, quota, budget, used,
                                           report)
                return
            if self._batch_cooldown > 0:
                if self._cooldown_like_stretch(post_id, quota, budget,
                                               used, report):
                    return
                continue
            room = min(quota - report.delivered, budget - report.attempts)
            if room < self._BATCH_MIN:
                # Tails below the chunk floor always ran scalar.
                self._deliver_likes_scalar(post_id, quota, budget, used,
                                           report)
                return
            if inj.decide_chunk(min(room, self._BATCH_CHUNK),
                                key=self.domain):
                self._batch_failed()
                continue
            wave = api.delivery_wave(post_id)
            try:
                stalled = self._wave_like_run(
                    wave, min(room, self._BATCH_CHUNK), quota, budget,
                    used, report)
            finally:
                wave.finish()
            self._batch_backoff = self._BATCH_CHUNK
            self._batch_fail_streak = 0
            if stalled:
                return

    def _cooldown_like_stretch(self, post_id: str, quota: int, budget: int,
                               used: Set[str],
                               report: DeliveryReport) -> bool:
        """Serve the circuit-breaker backoff through the scalar oracle.

        One cooldown tick per request, exactly like the scalar loop;
        returns True when the member pool ran dry (delivery must stop).
        The caller opens a fresh wave afterwards — the interlude mutates
        the live limiter deques, so any prior wave's memoized capacities
        are stale by construction (waves are finished before this runs).
        """
        while (self._batch_cooldown > 0 and report.delivered < quota
               and report.attempts < budget and not report.halted):
            self._batch_cooldown -= 1
            report.attempts += 1
            member = self._sample_member(used)
            if member is None:
                return True
            if self._perform_like(member, post_id, report):
                used.add(member)
                report.delivered += 1
        return False

    def _wave_like_run(self, wave, seg: int, quota: int, budget: int,
                       used: Set[str], report: DeliveryReport) -> bool:
        """Run up to ``seg`` delivery entries through ``wave``
        (``seg < 0`` = unbounded).  Per-entry RNG draws, verdict
        handling and report bookkeeping mirror
        :meth:`_deliver_likes_scalar` + :meth:`_perform_like` exactly.
        Returns True when the member pool ran dry."""
        sample_member = self._sample_member
        token_get = self.token_db.get
        pick_ip = self._pick_ip
        wave_like = wave.like
        retry_policy = self.retry_policy
        counters = retry_policy.counters
        now = self.world.clock._now
        while (report.delivered < quota and report.attempts < budget
               and not report.halted):
            if seg == 0:
                return False
            seg -= 1
            report.attempts += 1
            member = sample_member(used)
            if member is None:
                return True
            token = token_get(member)
            if token is None:
                continue
            ip = pick_ip()
            if ip is None:
                report.blocked += 1
                report.halted = True
                return False
            code = wave_like(token, ip)
            if code in _TRANSIENT_CODES:
                before = counters["retries"]
                attempts0 = counters["giveups_attempts"]
                deadline0 = counters["giveups_deadline"]
                code = retry_policy.retry(
                    "like_post", member, now,
                    lambda: wave_like(token, ip), code)
                report.retries += counters["retries"] - before
                report.giveups_attempts += (
                    counters["giveups_attempts"] - attempts0)
                report.giveups_deadline += (
                    counters["giveups_deadline"] - deadline0)
            if code is not None:
                if code == "invalid_token":
                    self._drop_member(member)
                    report.dead_tokens_dropped += 1
                elif code == "token_limit":
                    self._rate_errors_today += 1
                    report.rate_limited += 1
                elif code == "ip_limit":
                    self._exhausted_ips.add(ip)
                    self._invalidate_ip_cache()
                    report.ip_limited += 1
                elif code == "blocked":
                    asn = self.world.as_registry.asn_of(ip)
                    if asn is not None:
                        self._blocked_asns.add(asn)
                        self._invalidate_ip_cache()
                    report.blocked += 1
                elif code in _TRANSIENT_CODES:
                    report.transient_failures += 1
                else:
                    report.other_failures += 1
                continue
            self._note_use(member)
            used.add(member)
            report.delivered += 1
        return False

    def _perform_like(self, member: str, post_id: str,
                      report: DeliveryReport) -> bool:
        token = self.token_db.get(member)
        if token is None:
            return False
        ip = self._pick_ip()
        if ip is None:
            report.blocked += 1
            report.halted = True
            return False
        code = self.world.api.try_like_post(token, post_id, source_ip=ip)
        if code in _TRANSIENT_CODES:
            policy = self.retry_policy
            counters = policy.counters
            before = counters["retries"]
            attempts0 = counters["giveups_attempts"]
            deadline0 = counters["giveups_deadline"]
            code = policy.retry(
                "like_post", member, self.world.clock._now,
                lambda: self.world.api.try_like_post(
                    token, post_id, source_ip=ip),
                code)
            report.retries += counters["retries"] - before
            report.giveups_attempts += (
                counters["giveups_attempts"] - attempts0)
            report.giveups_deadline += (
                counters["giveups_deadline"] - deadline0)
        if code is not None:
            if code == "invalid_token":
                self._drop_member(member)
                report.dead_tokens_dropped += 1
            elif code == "token_limit":
                self._rate_errors_today += 1
                report.rate_limited += 1
            elif code == "ip_limit":
                self._exhausted_ips.add(ip)
                self._invalidate_ip_cache()
                report.ip_limited += 1
            elif code == "blocked":
                asn = self.world.as_registry.asn_of(ip)
                if asn is not None:
                    self._blocked_asns.add(asn)
                    self._invalidate_ip_cache()
                report.blocked += 1
            elif code in _TRANSIENT_CODES:
                report.transient_failures += 1
            else:
                report.other_failures += 1
            return False
        self._note_use(member)
        return True

    def _deliver_comments(self, post_id: str, quota: int,
                          exclude: Set[str]) -> DeliveryReport:
        report = DeliveryReport(requested=quota, delivered=0, attempts=0)
        used: Set[str] = set(exclude)
        budget = max(1, int(quota * self.profile.retry_factor) + 3)
        dictionary = self.comment_dictionary
        assert dictionary is not None
        while report.delivered < quota and report.attempts < budget:
            report.attempts += 1
            member = self._sample_member(used)
            if member is None:
                break
            token = self.token_db.get(member)
            if token is None:
                continue
            ip = self._pick_ip()
            if ip is None:
                break
            text = dictionary.sample(self.rng)
            try:
                self.world.api.comment(token, post_id, text, source_ip=ip)
            except TransientApiError:
                # Retry the identical payload with backoff; any terminal
                # code is folded into the usual failure accounting.
                code = self._retry_comment(member, token, post_id, text,
                                           ip, report)
                if code is not None:
                    if code == "invalid_token":
                        self._drop_member(member)
                        report.dead_tokens_dropped += 1
                    elif code in _TRANSIENT_CODES:
                        report.transient_failures += 1
                    else:
                        report.other_failures += 1
                    continue
            except InvalidTokenError:
                self._drop_member(member)
                report.dead_tokens_dropped += 1
                continue
            except (GraphApiError, SocialNetworkError):
                report.other_failures += 1
                continue
            self._note_use(member)
            used.add(member)
            report.delivered += 1
        self.total_comments_delivered += report.delivered
        return report

    def _retry_comment(self, member: str, token: str, post_id: str,
                       text: str, ip: str,
                       report: DeliveryReport) -> Optional[str]:
        """Retry a transiently failed comment; None when it lands."""

        def attempt() -> Optional[str]:
            try:
                self.world.api.comment(token, post_id, text, source_ip=ip)
            except TransientApiError as error:
                return ("timeout" if error.code == "api_timeout"
                        else "transient")
            except InvalidTokenError:
                return "invalid_token"
            except (GraphApiError, SocialNetworkError):
                return "error"
            return None

        policy = self.retry_policy
        counters = policy.counters
        before = counters["retries"]
        attempts0 = counters["giveups_attempts"]
        deadline0 = counters["giveups_deadline"]
        code = policy.retry("comment", member, self.world.clock._now,
                            attempt, "transient")
        report.retries += counters["retries"] - before
        report.giveups_attempts += (
            counters["giveups_attempts"] - attempts0)
        report.giveups_deadline += (
            counters["giveups_deadline"] - deadline0)
        return code

    # ------------------------------------------------------------------
    # Outgoing activity: the network spends *this member's* token serving
    # other members' requests (what Table 4 calls "Outgoing Activities").
    # ------------------------------------------------------------------
    def use_member_token_for_background(self, member: str,
                                        actions: int) -> int:
        """Spend ``member``'s token on ``actions`` background likes.

        Page targets are liked first (each page once per member), then
        requester posts; returns how many actions actually executed.
        """
        performed = 0
        for _ in range(actions):
            token = self.token_db.get(member)
            if token is None:
                break
            if self._background_like(member, token):
                performed += 1
        return performed

    #: Share of background actions spent promoting the operator's own
    #: content (§5.2: honeypots were "frequently used" to like owners'
    #: timeline posts).
    SELF_PROMOTION_SHARE = 0.05

    def _background_like(self, member: str, token: str) -> bool:
        ip = self._pick_ip()
        if ip is None:
            return False
        if (self.owner is not None
                and self.rng.random() < self.SELF_PROMOTION_SHARE):
            if self._promote_owner(member, token, ip):
                return True
        page_share = self._page_target_share()
        liked_pages = self._page_likes_done.setdefault(member, set())
        try:
            if self.rng.random() < page_share:
                page_id = self._next_page_for(liked_pages)
                if page_id is not None:
                    self.world.api.like_page(token, page_id, source_ip=ip)
                    liked_pages.add(page_id)
                    self._note_use(member)
                    return True
                # fall through to a requester post
            target_post = self._next_requester_post()
            self.world.api.like_post(token, target_post, source_ip=ip)
        except InvalidTokenError:
            self._drop_member(member)
            return False
        except (GraphApiError, SocialNetworkError):
            return False
        self._note_use(member)
        return True

    def _promote_owner(self, member: str, token: str, ip: str) -> bool:
        """Spend the token on the operator's promo content instead."""
        target = self.rng.choice(self.owner.promo_post_ids
                                 + [self.owner.page_id])
        try:
            if target.startswith("page:"):
                self.world.api.like_page(token, target, source_ip=ip)
            else:
                self.world.api.like_post(token, target, source_ip=ip)
        except InvalidTokenError:
            self._drop_member(member)
            return False
        except (GraphApiError, SocialNetworkError):
            return False  # duplicate etc.: fall back to normal targets
        self._note_use(member)
        return True

    def _page_target_share(self) -> float:
        total = self.profile.outgoing_activities
        if total <= 0:
            return 0.0
        return self.profile.outgoing_target_pages / total

    def _next_page_for(self, liked: Set[str]) -> Optional[str]:
        """A page this member has not liked yet; grows the page pool on
        demand (pages belong to members promoting their fan pages)."""
        for page_id in self._pages:
            if page_id not in liked:
                return page_id
        owner = (self.rng.choice(self._member_list)
                 if self._member_list else None)
        if owner is None:
            return None
        page = self.world.platform.create_page(  # reprolint: disable=RL301 — members create their own fan pages through the first-party UI, not via a third-party app token
            owner, f"{self.domain} fan page {len(self._pages) + 1}")
        self._pages.append(page.page_id)
        return page.page_id

    def _next_requester_post(self) -> str:
        """A fresh post by a requesting member drawn from the requester
        pool (sized so unique-target counts match Table 4)."""
        if not self._requester_pool:
            size = self._requester_pool_size()
            self._requester_pool = [None] * size
        idx = self.rng.randrange(len(self._requester_pool))
        requester = self._requester_pool[idx]
        if requester is None:
            requester = self.directory.draw_member(exclude=set())
            self._requester_pool[idx] = requester
        post = self.world.platform.create_post(  # reprolint: disable=RL301 — a requester posting on their own wall models the first-party UI; only the subsequent likes flow through the Graph API
            requester, f"please like my post ({self.domain})")
        return post.post_id

    def _requester_pool_size(self) -> int:
        profile = self.profile
        account_actions = max(
            1, profile.outgoing_activities - profile.outgoing_target_pages)
        unique_accounts = max(1, profile.outgoing_target_accounts)
        if account_actions <= unique_accounts:
            return unique_accounts
        return calibrate_pool_size(unique_accounts, account_actions)

    # ------------------------------------------------------------------
    # Daily upkeep
    # ------------------------------------------------------------------
    def daily_tick(self) -> None:
        """End-of-day housekeeping: §6.1 adaptation, §6.2 replenishment,
        hot-set refresh and the day's background serving."""
        # Adaptation: persistent rate-limit errors push the network to
        # uniform token sampling after `adaptation_days` bad days.
        if self._rate_errors_today > 20:
            self._rate_error_day_streak += 1
            if (self._rate_error_day_streak >= self.profile.adaptation_days
                    and not self._uniform_mode):
                self._uniform_mode = True
        else:
            self._rate_error_day_streak = 0
        self._rate_errors_today = 0

        if self.replenishment_enabled and not self.in_scheduled_outage():
            # Users cannot submit tokens while the site is down.
            self._replenish()
        if not self.in_scheduled_outage():
            self._process_auto_delivery()
        self._refresh_hot_set()

    def _replenish(self) -> None:
        """§6.2: fresh joins plus returning members whose tokens died.

        Rates are absolute (members/day), matching the paper's
        observation that networks see a "rather small number of distinct
        new colluding accounts" daily regardless of pool size.
        """
        rng = self.rng
        fresh = self._poissonish(self.profile.new_members_per_day)
        for _ in range(fresh):
            self.join()
        rejoining = min(len(self.dead_members),
                        self._poissonish(self.profile.rejoins_per_day))
        if rejoining <= 0:
            return
        dead = list(self.dead_members)
        rng.shuffle(dead)
        for account_id in dead[:rejoining]:
            self.join(account_id)

    def _process_auto_delivery(self) -> None:
        """Premium perk (§5.1): subscribers on auto-delivery plans get
        their newest post boosted daily without logging in."""
        for member, plan_name in self.monetization.subscriptions.items():
            plan = self.monetization.plan(plan_name)
            if not plan.auto_delivery:
                continue
            timeline = self.world.platform.timeline(member)
            if not timeline:
                continue
            latest = timeline[-1]
            if self._auto_boosted.get(member) == latest.post_id:
                continue
            self._deliver_likes(latest.post_id, plan.likes_per_request,
                                exclude={member})
            self._auto_boosted[member] = latest.post_id

    def _poissonish(self, mean: float) -> int:
        """A cheap Poisson-like draw (normal approximation, floored)."""
        if mean <= 0:
            return 0
        if mean < 20:
            # Knuth's algorithm is fine at small means.
            limit = math.exp(-mean)
            k, product = 0, self.rng.random()
            while product > limit:
                k += 1
                product *= self.rng.random()
            return k
        return max(0, int(round(self.rng.gauss(mean, mean ** 0.5))))

    # ------------------------------------------------------------------
    # Background serving: the bulk of the network's real workload, run
    # through the Graph API's charge-only path so countermeasures see
    # the token/IP/AS pressure without the simulator materializing tens
    # of millions of platform writes.
    # ------------------------------------------------------------------
    def serve_background_requests(self, count: int) -> int:
        """Serve ``count`` anonymous member like-requests; returns the
        number of like charges that succeeded."""
        if count <= 0:
            return 0
        total = 0
        if not self._batching_active():
            for _ in range(count):
                total += self._serve_one_background_scalar()
            return total
        if self.world.faults is None:
            # One charge wave spans the whole serving event: every
            # request in it shares this clock instant, so token lookups
            # and window capacities memoize across requests and the
            # limiter hits land in a single flush.
            wave = self.world.api.delivery_wave()
            try:
                for _ in range(count):
                    total += self._serve_one_background_wave(wave)
            finally:
                wave.finish()
            return total
        for _ in range(count):
            total += self._serve_one_background_faulty()
        return total

    def _background_entry(self, charge, used: Set[str]) -> Optional[int]:
        """One sampled charge attempt: 1 charged, 0 failed, ``None``
        when the request must stop (member pool or IP pool ran dry).
        ``charge(token, ip)`` is either the scalar
        :meth:`GraphApi.try_charge_like` oracle or a wave's
        :meth:`~repro.graphapi.api.DeliveryWave.charge` — both consume
        identical RNG/fault draws and bookkeeping."""
        member = self._sample_member(used)
        if member is None:
            return None
        token = self.token_db.get(member)
        if token is None:
            return 0
        ip = self._pick_ip()
        if ip is None:
            return None
        code = charge(token, ip)
        if code in _TRANSIENT_CODES:
            code = self.retry_policy.retry(
                "charge_like", member, self.world.clock._now,
                lambda: charge(token, ip), code)
        if code is not None:
            if code == "invalid_token":
                self._drop_member(member)
            elif code == "token_limit":
                self._rate_errors_today += 1
            elif code == "ip_limit":
                self._exhausted_ips.add(ip)
                self._invalidate_ip_cache()
            elif code == "blocked":
                asn = self.world.as_registry.asn_of(ip)
                if asn is not None:
                    self._blocked_asns.add(asn)
                    self._invalidate_ip_cache()
            return 0
        used.add(member)
        return 1

    def _serve_one_background_scalar(self) -> int:
        """Scalar oracle for one background request (and the live path
        while batching is disabled or degraded)."""
        quota = self.profile.likes_per_request
        budget = max(1, int(quota * self.profile.retry_factor))
        delivered = 0
        attempts = 0
        used: Set[str] = set()
        api = self.world.api

        def charge(token: str, ip: str) -> Optional[str]:
            return api.try_charge_like(token, source_ip=ip)

        while delivered < quota and attempts < budget:
            if self._batch_cooldown > 0:
                self._batch_cooldown -= 1
            attempts += 1
            got = self._background_entry(charge, used)
            if got is None:
                break
            delivered += got
        return delivered

    def _serve_one_background_wave(self, wave) -> int:
        """One background request through an open (fault-free) wave.

        The entry bookkeeping mirrors :meth:`_background_entry` exactly;
        it is inlined — and the impossible-here transient-retry check
        dropped (:meth:`DeliveryWave.charge` only returns transient
        codes from a live fault injector) — because this loop processes
        millions of entries per campaign."""
        quota = self.profile.likes_per_request
        budget = max(1, int(quota * self.profile.retry_factor))
        delivered = 0
        attempts = 0
        used: Set[str] = set()
        charge = wave.charge
        sample_member = self._sample_member
        token_get = self.token_db.get
        pick_ip = self._pick_ip
        while delivered < quota and attempts < budget:
            attempts += 1
            member = sample_member(used)
            if member is None:
                break
            token = token_get(member)
            if token is None:
                continue
            ip = pick_ip()
            if ip is None:
                break
            code = charge(token, ip)
            if code is not None:
                if code == "token_limit":
                    self._rate_errors_today += 1
                elif code == "invalid_token":
                    self._drop_member(member)
                elif code == "ip_limit":
                    self._exhausted_ips.add(ip)
                    self._invalidate_ip_cache()
                elif code == "blocked":
                    asn = self.world.as_registry.asn_of(ip)
                    if asn is not None:
                        self._blocked_asns.add(asn)
                        self._invalidate_ip_cache()
                continue
            used.add(member)
            delivered += 1
        return delivered

    def _serve_one_background_faulty(self) -> int:
        """One background request under an active fault plan: waves are
        paced in chunk-sized segments with the same chunk-rule probes,
        circuit breaker and scalar-oracle cooldown stretches as
        :meth:`_deliver_likes_wave`."""
        inj = self.world.faults
        api = self.world.api
        quota = self.profile.likes_per_request
        budget = max(1, int(quota * self.profile.retry_factor))
        delivered = 0
        attempts = 0
        used: Set[str] = set()

        def scalar_charge(token: str, ip: str) -> Optional[str]:
            return api.try_charge_like(token, source_ip=ip)

        while delivered < quota and attempts < budget:
            room = min(quota - delivered, budget - attempts)
            if (self._batch_degraded_day == self.world.clock.day()
                    or self._batch_cooldown > 0
                    or room < self._BATCH_MIN):
                if self._batch_cooldown > 0:
                    self._batch_cooldown -= 1
                attempts += 1
                got = self._background_entry(scalar_charge, used)
                if got is None:
                    break
                delivered += got
                continue
            seg = min(room, self._BATCH_CHUNK)
            if inj.decide_chunk(seg, key=self.domain):
                self._batch_failed()
                continue
            wave = api.delivery_wave()
            stop = False
            try:
                charge = wave.charge
                while seg > 0 and delivered < quota and attempts < budget:
                    seg -= 1
                    attempts += 1
                    got = self._background_entry(charge, used)
                    if got is None:
                        stop = True
                        break
                    delivered += got
            finally:
                wave.finish()
            self._batch_backoff = self._BATCH_CHUNK
            self._batch_fail_streak = 0
            if stop:
                break
        return delivered

    def _binomial(self, n: int, p: float) -> int:
        if n <= 0 or p <= 0:
            return 0
        if p >= 1.0:
            return n
        mean = n * p
        if n > 200 and mean > 5:
            # Normal approximation keeps daily replenishment O(1) even
            # for six-figure member pools.
            std = (n * p * (1.0 - p)) ** 0.5
            return max(0, min(n, int(round(self.rng.gauss(mean, std)))))
        return sum(1 for _ in range(n) if self.rng.random() < p)
