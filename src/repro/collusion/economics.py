"""The economics of running a collusion network (§5.1 / §8).

The paper's closing remarks call for "a deeper investigation into the
economic aspects of collusion networks ... to limit their financial
incentives".  This module builds that investigation on top of the
simulated ecosystem: a revenue model (redirect-chain display ads +
premium plans) against an operating-cost model (hosting, domains,
bulletproof premiums), plus what-if operators for the two levers a
defender can pull — ad-network demonetization and premium-payment
disruption.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.collusion.network import CollusionNetwork
from repro.webintel.adnetworks import REPUTABLE_NETWORKS

#: Revenue per thousand ad impressions, by network class (USD).  The
#: reputable networks reached via redirect pay an order of magnitude
#: more than pop-under remnant inventory — which is exactly why the
#: sites bother with the redirect trick (§5.1).
RPM_REPUTABLE_USD = 1.50
RPM_REMNANT_USD = 0.15

#: Monthly infrastructure prices (USD).
IP_MONTHLY_USD = 1.0
BULLETPROOF_IP_MONTHLY_USD = 4.0
DOMAIN_CDN_MONTHLY_USD = 30.0

#: Fraction of members on a paid plan when no explicit subscriptions are
#: recorded (freemium conversion rates for grey-market services).
DEFAULT_PREMIUM_UPTAKE = 0.005


@dataclass(frozen=True)
class EconomicsEstimate:
    """Monthly profit-and-loss picture for one collusion network."""

    domain: str
    daily_visits: float
    ad_revenue_monthly: float
    premium_revenue_monthly: float
    hosting_cost_monthly: float
    fixed_cost_monthly: float

    @property
    def revenue_monthly(self) -> float:
        return self.ad_revenue_monthly + self.premium_revenue_monthly

    @property
    def cost_monthly(self) -> float:
        return self.hosting_cost_monthly + self.fixed_cost_monthly

    @property
    def profit_monthly(self) -> float:
        return self.revenue_monthly - self.cost_monthly

    @property
    def is_profitable(self) -> bool:
        return self.profit_monthly > 0


def estimate_economics(world, network: CollusionNetwork,
                       premium_uptake: float = DEFAULT_PREMIUM_UPTAKE,
                       demonetized: bool = False) -> EconomicsEstimate:
    """Monthly P&L for ``network`` from observable ecosystem state.

    ``demonetized`` models the defender lever of §5.1: reputable ad
    networks blacklisting the redirect domains too, leaving only remnant
    inventory.
    """
    if not 0 <= premium_uptake <= 1:
        raise ValueError(f"bad premium uptake: {premium_uptake}")
    traffic = world.traffic_ranker.get(network.domain)
    scan = world.ad_scanner.scan(network.domain)
    gate = network.profile.gate

    # Ads: every visit sees the landing page plus one impression per
    # forced redirect hop.
    impressions_per_visit = 1 + gate.redirect_hops
    serves_reputable = (not demonetized
                        and bool(scan.networks_seen & REPUTABLE_NETWORKS))
    rpm = RPM_REPUTABLE_USD if serves_reputable else RPM_REMNANT_USD
    ad_revenue = (traffic.daily_visits * impressions_per_visit
                  * rpm / 1000.0 * 30)

    # Premium plans: explicit subscriptions first, otherwise the
    # freemium-uptake estimate over the live membership.
    monetization = network.monetization
    if monetization.subscriptions:
        premium_revenue = monetization.monthly_revenue_usd()
    else:
        plans = monetization.premium_plans
        avg_price = (sum(p.monthly_price_usd for p in plans) / len(plans)
                     if plans else 0.0)
        premium_revenue = (network.member_count() * premium_uptake
                           * avg_price)

    # Costs: the IP pool (bulletproof space costs a premium) + fixed.
    bulletproof_ips = sum(
        1 for ip in network.ip_pool.addresses
        if (system := world.as_registry.lookup(ip)) is not None
        and system.is_bulletproof)
    plain_ips = len(network.ip_pool) - bulletproof_ips
    hosting = (bulletproof_ips * BULLETPROOF_IP_MONTHLY_USD
               + plain_ips * IP_MONTHLY_USD)

    return EconomicsEstimate(
        domain=network.domain,
        daily_visits=traffic.daily_visits,
        ad_revenue_monthly=ad_revenue,
        premium_revenue_monthly=premium_revenue,
        hosting_cost_monthly=hosting,
        fixed_cost_monthly=DOMAIN_CDN_MONTHLY_USD,
    )


def demonetization_impact(world, network: CollusionNetwork,
                          premium_uptake: float = DEFAULT_PREMIUM_UPTAKE
                          ) -> Dict[str, float]:
    """Before/after picture of blacklisting the redirect domains."""
    before = estimate_economics(world, network, premium_uptake)
    after = estimate_economics(world, network, premium_uptake,
                               demonetized=True)
    return {
        "profit_before": before.profit_monthly,
        "profit_after": after.profit_monthly,
        "ad_revenue_lost": (before.ad_revenue_monthly
                            - after.ad_revenue_monthly),
        "still_profitable": float(after.is_profitable),
    }
