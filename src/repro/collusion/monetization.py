"""Collusion network monetization: advertising and premium plans (§5.1)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.webintel.adnetworks import AdNetwork, SiteAdProfile


@dataclass(frozen=True)
class PremiumPlan:
    """A paid tier lifting the free tier's artificial restrictions."""

    name: str
    monthly_price_usd: float
    likes_per_request: int
    auto_delivery: bool  # likes without manual logins per request
    no_delays: bool


@dataclass
class MonetizationProfile:
    """Everything a network does to make money."""

    domain: str
    free_likes_per_request: int
    premium_plans: Tuple[PremiumPlan, ...] = ()
    ad_profile: Optional[SiteAdProfile] = None
    subscriptions: Dict[str, str] = field(default_factory=dict)

    def plan(self, name: str) -> PremiumPlan:
        for plan in self.premium_plans:
            if plan.name == name:
                return plan
        raise KeyError(f"{self.domain} has no plan {name!r}")

    def subscribe(self, member_id: str, plan_name: str) -> PremiumPlan:
        plan = self.plan(plan_name)
        self.subscriptions[member_id] = plan_name
        return plan

    def likes_per_request_for(self, member_id: str) -> int:
        """The like quota this member's tier allows."""
        plan_name = self.subscriptions.get(member_id)
        if plan_name is None:
            return self.free_likes_per_request
        return self.plan(plan_name).likes_per_request

    def monthly_revenue_usd(self) -> float:
        return sum(self.plan(name).monthly_price_usd
                   for name in self.subscriptions.values())


def default_premium_plans(free_likes: int) -> Tuple[PremiumPlan, ...]:
    """The three-tier ladder typical of the services (§5.1: 'up to 2000
    likes for the most expensive plan')."""
    return (
        PremiumPlan("basic", 4.99, max(free_likes * 2, 100),
                    auto_delivery=False, no_delays=True),
        PremiumPlan("pro", 14.99, max(free_likes * 3, 500),
                    auto_delivery=True, no_delays=True),
        PremiumPlan("ultimate", 29.99, 2000,
                    auto_delivery=True, no_delays=True),
    )


def default_ad_profile(domain: str, redirect_domain: str) -> SiteAdProfile:
    """The redirect-monetization setup §5.1 describes: no reputable
    networks served directly, AdSense/Atlas after a whitelisted redirect,
    anti-adblock scripts on the main site."""
    return SiteAdProfile(
        domain=domain,
        direct_networks={AdNetwork.POPADS},
        redirect_networks={
            redirect_domain: {AdNetwork.ADSENSE, AdNetwork.ATLAS},
        },
        anti_adblock=True,
        requires_adblock_disabled=True,
    )
