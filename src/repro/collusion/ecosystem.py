"""Builds the full collusion ecosystem inside a simulated world.

One call to :func:`build_ecosystem` registers the autonomous systems and
IP pools, the extra exploited applications, the Table 5 short URLs with
their seeded click histories, WHOIS records, traffic-rank measurements and
ad profiles, then instantiates the 22 milked collusion networks with
calibrated member pools.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.collusion.monetization import default_ad_profile
from repro.collusion.network import CollusionNetwork, MemberDirectory
from repro.collusion.ownership import setup_owner
from repro.collusion.profiles import (
    AS_PLAN,
    EXTRA_APP_SPECS,
    LONG_URL_CLICK_TOTALS,
    MILKED_PROFILES,
    REFERRER_TO_NETWORK,
    SHORT_URL_SEEDS,
    CollusionNetworkProfile,
    unique_table2_sites,
)
from repro.oauth.apps import AppSecuritySettings
from repro.oauth.scopes import PermissionScope
from repro.oauth.tokens import TokenLifetime
from repro.sim.clock import DAY


@dataclass
class CollusionEcosystem:
    """The built ecosystem: networks plus the shared member directory."""

    networks: Dict[str, CollusionNetwork] = field(default_factory=dict)
    directory: Optional[MemberDirectory] = None
    short_url_slugs: Dict[str, str] = field(default_factory=dict)
    table5_slugs: List[Tuple[str, str]] = field(default_factory=list)

    def network(self, domain: str) -> CollusionNetwork:
        net = self.networks.get(domain)
        if net is None:
            raise KeyError(f"network not built: {domain}")
        return net

    def total_memberships(self) -> int:
        return sum(n.member_count() + len(n.dead_members)
                   for n in self.networks.values())

    def unique_members(self) -> int:
        members = set()
        for net in self.networks.values():
            members.update(net.token_db)
            members.update(net.dead_members)
        return len(members)


def register_infrastructure(world) -> None:
    """Register the AS plan and announce each AS's /16 prefix."""
    for asn, name, country, bulletproof, base in AS_PLAN:
        world.as_registry.register(asn, name, country,
                                   is_bulletproof=bulletproof)
        world.as_registry.announce(asn, base, 16)


def register_extra_apps(world) -> None:
    """Register exploited apps that are not part of the top-100 catalog."""
    for app_id, name, mau, dau in EXTRA_APP_SPECS:
        world.apps.register(
            name=name,
            redirect_uri=f"https://{app_id}.example/callback",
            security=AppSecuritySettings(client_side_flow_enabled=True,
                                         require_app_secret=False),
            approved_permissions=PermissionScope.full(),
            token_lifetime=TokenLifetime.LONG_TERM,
            monthly_active_users=mau,
            daily_active_users=dau,
            app_id=app_id,
        )


def seed_short_urls(world, rng) -> Tuple[Dict[str, str], List[Tuple[str, str]]]:
    """Create the Table 5 short URLs with their historical click volumes.

    Returns (network domain -> slug) for networks that have a listed
    short URL, and the ordered [(paper label, slug)] list for Table 5.
    """
    long_urls = {key: f"https://social.example/dialog/oauth?key={key}"
                 for key in LONG_URL_CLICK_TOTALS}
    slugs_by_domain: Dict[str, str] = {}
    table5: List[Tuple[str, str]] = []
    listed_totals: Dict[str, int] = {}
    for seed in SHORT_URL_SEEDS:
        created_at = -seed.days_before_epoch * DAY
        short = world.shortener.shorten(long_urls[seed.long_url_key],
                                        created_at=created_at)
        _seed_click_history(world, rng, short.slug, seed.seed_clicks,
                            seed.referrer, created_at)
        table5.append((seed.label, short.slug))
        listed_totals[seed.long_url_key] = (
            listed_totals.get(seed.long_url_key, 0) + seed.seed_clicks)
        network_domain = (REFERRER_TO_NETWORK.get(seed.referrer)
                          if seed.referrer else None)
        if network_domain and network_domain not in slugs_by_domain:
            slugs_by_domain[network_domain] = short.slug
    # Unlisted short URLs make up the remainder of each long URL's total.
    for key, total in LONG_URL_CLICK_TOTALS.items():
        remainder = total - listed_totals.get(key, 0)
        if remainder > 0:
            extra = world.shortener.shorten(long_urls[key],
                                            created_at=-400 * DAY)
            _seed_click_history(world, rng, extra.slug, remainder,
                                None, -400 * DAY)
    return slugs_by_domain, table5


def _seed_click_history(world, rng, slug: str, clicks: int,
                        referrer: Optional[str], created_at: int) -> None:
    """Record a click history in country-share batches (storing hundreds
    of millions of Click objects individually would be absurd, so bulk
    batches carry the same aggregate geolocation signal)."""
    if clicks <= 0:
        return
    mix = [("IN", 0.45), ("EG", 0.10), ("VN", 0.09), ("BD", 0.08),
           ("PK", 0.08), ("ID", 0.07), ("DZ", 0.05), ("TR", 0.04),
           ("US", 0.02), ("OTHER", 0.02)]
    remaining = clicks
    for i, (country, share) in enumerate(mix):
        if i == len(mix) - 1:
            batch = remaining
        else:
            batch = min(int(clicks * share), remaining)
        if batch > 0:
            world.shortener.record_clicks(slug, batch, referrer=referrer,
                                          country=country,
                                          timestamp=created_at)
            remaining -= batch


def seed_web_intel(world, rng) -> None:
    """Register WHOIS records, traffic measurements and ad profiles for
    every Table 2 site."""
    milked = {p.domain: p for p in MILKED_PROFILES}
    registrant_counter = 0
    for site in unique_table2_sites():
        profile = milked.get(site.domain)
        privacy = profile.whois_privacy if profile else (
            rng.random() < 0.36)  # §5.2: 36% behind privacy services
        country = (profile.registrant_country if profile
                   else site.top_country or "IN")
        registrant_counter += 1
        world.whois.register(
            domain=site.domain,
            registrant_name=f"Operator {registrant_counter}",
            registrant_country=country,
            privacy_protected=privacy,
            nameserver_provider="cloudflare",
        )
        # Traffic: invert the ranker's Zipf anchor so the measured visits
        # land the site at its Table 2 rank.
        visits = world.traffic_ranker.visits_for_rank(site.alexa_rank)
        country_visits: Dict[str, float] = {}
        if site.top_country and site.top_country_share:
            country_visits[site.top_country] = (visits
                                                * site.top_country_share)
            # Spread the remainder across many small buckets so the
            # listed top country really is the modal one even at low
            # shares (hublaa.me's top share is only 18%).
            rest = visits * (1 - site.top_country_share)
            buckets = 12
            for i in range(buckets):
                country_visits[f"other-{i + 1}"] = rest / buckets
        world.traffic_ranker.observe(site.domain, visits, country_visits)
        world.ad_scanner.register_site(
            default_ad_profile(site.domain,
                               f"redirect-{registrant_counter}.example"))


def build_ecosystem(world, build_membership: bool = True,
                    network_limit: Optional[int] = None,
                    membership_scale: Optional[float] = None) -> CollusionEcosystem:
    """Stand up the entire collusion ecosystem in ``world``.

    ``membership_scale`` defaults to the world's configured scale; pools
    are calibrated so the milking campaign *observes* Table 4's
    membership numbers at that scale.
    """
    scale = (world.config.scale if membership_scale is None
             else membership_scale)
    rng = world.rng.stream("ecosystem")
    register_infrastructure(world)
    register_extra_apps(world)
    slugs_by_domain, table5 = seed_short_urls(world, rng)
    seed_web_intel(world, rng)

    directory = MemberDirectory(world.platform, world.geo,
                                world.rng.stream("members"))
    ecosystem = CollusionEcosystem(directory=directory,
                                   short_url_slugs=slugs_by_domain,
                                   table5_slugs=table5)

    as_bases = {asn: base for asn, _, _, _, base in AS_PLAN}
    profiles = MILKED_PROFILES[:network_limit]
    for profile in profiles:
        pool = _ip_pool_for(world, profile, as_bases, scale)
        network = CollusionNetwork(
            world, profile, directory, pool,
            short_url_slug=slugs_by_domain.get(profile.domain))
        setup_owner(world, network, scale=scale)
        if build_membership:
            network.build_membership(profile.pool_size(scale))
        ecosystem.networks[profile.domain] = network
    return ecosystem


def _ip_pool_for(world, profile: CollusionNetworkProfile,
                 as_bases: Dict[int, str], scale: float):
    """Allocate the network's source-IP pool across its ASes.

    Large pools (hublaa.me's 6,000) scale with the study; single-digit
    pools stay fixed — per-IP traffic concentration is the Fig. 8 signal.
    """
    size = profile.ip_pool_size
    if size > 100:
        # Scale the pool but keep it large enough that per-IP volume
        # stays below plausible IP limits, as it did at paper scale.
        size = max(600, int(size * scale))
    bases = [as_bases[asn] for asn in profile.asns]
    if len(bases) == 1:
        return world.ip_allocator.allocate(
            f"pool:{profile.domain}", bases[0], size)
    return world.ip_allocator.allocate_split(
        f"pool:{profile.domain}", bases, size)
