"""Collusion networks: the reputation-manipulation services of §3-§5."""

from repro.collusion.comments import CommentDictionary, CommentStyle
from repro.collusion.ecosystem import (
    CollusionEcosystem,
    build_ecosystem,
    register_extra_apps,
    register_infrastructure,
    seed_short_urls,
    seed_web_intel,
)
from repro.collusion.evasion import CaptchaChallengeCounter, RequestGate
from repro.collusion.monetization import (
    MonetizationProfile,
    PremiumPlan,
    default_ad_profile,
    default_premium_plans,
)
from repro.collusion.network import (
    CollusionNetwork,
    DeliveryReport,
    MemberDirectory,
)
from repro.collusion.profiles import (
    CollusionNetworkProfile,
    MILKED_PROFILES,
    SHORT_URL_SEEDS,
    TABLE2_SITES,
    calibrate_pool_size,
    profile_for,
    unique_table2_sites,
)

__all__ = [
    "CommentDictionary",
    "CommentStyle",
    "CollusionEcosystem",
    "build_ecosystem",
    "register_extra_apps",
    "register_infrastructure",
    "seed_short_urls",
    "seed_web_intel",
    "CaptchaChallengeCounter",
    "RequestGate",
    "MonetizationProfile",
    "PremiumPlan",
    "default_ad_profile",
    "default_premium_plans",
    "CollusionNetwork",
    "DeliveryReport",
    "MemberDirectory",
    "CollusionNetworkProfile",
    "MILKED_PROFILES",
    "SHORT_URL_SEEDS",
    "TABLE2_SITES",
    "calibrate_pool_size",
    "profile_for",
    "unique_table2_sites",
]
