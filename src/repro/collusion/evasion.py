"""Anti-automation and anti-detection tactics of collusion networks.

§4 documents the friction collusion networks put in front of requesters
(CAPTCHAs, fixed/random inter-request delays, redirection chains) and §6.3
the behaviours that defeat temporal clustering (token-pool sampling plus
per-token usage spreading).  This module models the request-side friction;
the sampling behaviour lives in :mod:`repro.collusion.network`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class RequestGate:
    """Per-request friction a member must clear before submitting.

    ``min_delay``/``max_delay`` — seconds a member must wait between two
    successive requests; ``captcha_required`` — whether each request (and
    login) needs a solved CAPTCHA; ``redirect_hops`` — ad-monetized
    redirections traversed before the request form.
    """

    min_delay: int = 300
    max_delay: int = 600
    captcha_required: bool = False
    redirect_hops: int = 0

    def delay_for(self, rng: random.Random) -> int:
        """Draw the wait imposed before the next request."""
        if self.max_delay < self.min_delay:
            raise ValueError("max_delay must be >= min_delay")
        if self.max_delay == self.min_delay:
            return self.min_delay
        return rng.randint(self.min_delay, self.max_delay)


class CaptchaChallengeCounter:
    """Tracks CAPTCHA challenges issued/solved for a network's frontend."""

    def __init__(self) -> None:
        self.issued = 0
        self.solved = 0

    def challenge(self) -> int:
        """Issue a challenge; returns its sequence number."""
        self.issued += 1
        return self.issued

    def record_solution(self) -> None:
        self.solved += 1

    @property
    def outstanding(self) -> int:
        return self.issued - self.solved
