"""The collusion network's web frontend — the Fig. 3 workflow, stepwise.

The paper's Fig. 3 shows what a colluding user actually does:

1. open the collusion network's website, click "install app";
2. get redirected to the platform's authorization dialog, grant the
   permissions, install the application;
3. click "get access token": the site redirects to the dialog with
   ``view-source:`` prepended so the browser *displays* the redirect
   instead of following it, leaving ``#access_token=...`` in the
   address bar;
4. manually copy the token and paste it into the site's textbox;
5. land on the admin panel and request likes/comments — solving a
   CAPTCHA and sitting through ad redirects as demanded.

:class:`CollusionWebsiteSession` enforces that ordering (each step
checks its precondition) and the admin panel enforces the evasion gates
(CAPTCHA, inter-request delay) before handing the request to the
network's delivery engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.collusion.network import CollusionNetwork, DeliveryReport
from repro.oauth.server import AuthorizationRequest


class WorkflowError(RuntimeError):
    """A Fig. 3 step was attempted out of order or without its gate."""


@dataclass
class AdRedirect:
    """One monetization hop the user is bounced through."""

    url: str
    seconds: int


class CollusionWebsiteSession:
    """One user's browser session against a collusion network site."""

    def __init__(self, network: CollusionNetwork, user_id: str) -> None:
        self.network = network
        self.user_id = user_id
        self.world = network.world
        self._visited = False
        self._installed = False
        self._token_in_address_bar: Optional[str] = None
        self._submitted = False
        self._captcha_pending = False
        self._next_request_at = 0

    # ------------------------------------------------------------------
    # Steps 1-2: visit and install
    # ------------------------------------------------------------------
    def open_site(self) -> str:
        """Step 1: load the landing page (counts a short-URL click)."""
        account = self.world.platform.get_account(self.user_id)
        if self.network.short_url_slug is not None:
            self.world.shortener.click(self.network.short_url_slug,
                                       referrer=self.network.domain,
                                       country=account.country)
        self._visited = True
        return f"https://{self.network.domain}/"

    def install_app(self) -> str:
        """Step 2: follow the install redirect and authorize the app."""
        if not self._visited:
            raise WorkflowError("open the site before installing the app")
        app = self.network.app
        result = self.world.auth_server.authorize(
            AuthorizationRequest(app.app_id, app.redirect_uri, "token",
                                 app.approved_permissions),
            self.user_id)
        self._installed = True
        # The install redirect is followed; the site does not see the
        # token yet — that is what step 3's view-source trick is for.
        return result.redirect_url

    # ------------------------------------------------------------------
    # Step 3: the view-source trick
    # ------------------------------------------------------------------
    def click_get_access_token(self) -> str:
        """Step 3: the site opens the dialog with ``view-source:`` so the
        redirect URL (with the token fragment) stays in the address bar."""
        if not self._installed:
            raise WorkflowError("install the application first")
        app = self.network.app
        result = self.world.auth_server.authorize(
            AuthorizationRequest(app.app_id, app.redirect_uri, "token",
                                 app.approved_permissions),
            self.user_id)
        self._token_in_address_bar = result.token_from_fragment()
        return f"view-source:{result.redirect_url}"

    def copy_token_from_address_bar(self) -> str:
        """The manual copy of ``#access_token=...``."""
        if self._token_in_address_bar is None:
            raise WorkflowError("no token in the address bar yet")
        return self._token_in_address_bar

    # ------------------------------------------------------------------
    # Step 4: submit the token
    # ------------------------------------------------------------------
    def submit_token(self, token: str) -> None:
        """Paste the token into the site's textbox; the site stores it."""
        if not self._visited:
            raise WorkflowError("open the site first")
        validated = self.world.tokens.validate(token)
        if validated.user_id != self.user_id:
            raise WorkflowError("token does not belong to this user")
        account = self.world.platform.get_account(self.user_id)
        self.network._store_member(self.user_id, token, account.country)
        self.network.total_joins += 1
        self._submitted = True

    # ------------------------------------------------------------------
    # Step 5: the admin panel
    # ------------------------------------------------------------------
    def ad_redirects(self) -> list:
        """The monetization hops before the request form (§5.1)."""
        gate = self.network.profile.gate
        return [AdRedirect(url=f"https://redirect-{i + 1}.example/ads",
                           seconds=5)
                for i in range(gate.redirect_hops)]

    def request_captcha(self) -> Optional[int]:
        """CAPTCHA challenge guarding the request form, if the site uses
        one; returns a challenge id."""
        if not self._submitted:
            raise WorkflowError("submit an access token first")
        if not self.network.profile.gate.captcha_required:
            return None
        self._captcha_pending = True
        return self.world.clock.now()  # challenge id: issue time

    def solve_captcha(self, solution_ok: bool = True) -> None:
        if not self._captcha_pending:
            raise WorkflowError("no CAPTCHA outstanding")
        if not solution_ok:
            raise WorkflowError("CAPTCHA failed")
        self._captcha_pending = False

    def request_likes(self, post_id: str) -> DeliveryReport:
        """Submit the like request, honoring every gate."""
        if not self._submitted:
            raise WorkflowError("submit an access token first")
        gate = self.network.profile.gate
        now = self.world.clock.now()
        if gate.captcha_required and self._captcha_pending:
            raise WorkflowError("solve the CAPTCHA first")
        if now < self._next_request_at:
            raise WorkflowError(
                f"wait {self._next_request_at - now}s between requests")
        report = self.network.submit_like_request(self.user_id, post_id)
        self._next_request_at = now + gate.delay_for(self.network.rng)  # reprolint: disable=RL202 — the website is the network's own front door, not a peer entity: pacing must consume the network stream so browser-path and direct-path runs draw identically
        if gate.captcha_required:
            self._captcha_pending = True  # next request needs a new one
        return report

    # ------------------------------------------------------------------
    def run_full_workflow(self, post_id: str) -> DeliveryReport:
        """Convenience: execute Fig. 3 end to end for one like request."""
        self.open_site()
        self.install_app()
        self.click_get_access_token()
        token = self.copy_token_from_address_bar()
        self.submit_token(token)
        for _ in self.ad_redirects():
            pass  # the user sits through the ads
        if self.request_captcha() is not None:
            self.solve_captcha()
        return self.request_likes(post_id)
