"""Personal-data harvesting with leaked tokens (§2.2 / §8).

Reputation manipulation is only one abuse of a leaked token: §2.2 notes
attackers "can abuse leaked access tokens to retrieve users' personal
information", and §8 lists data theft and social-graph-driven malware
propagation as attacks to investigate.  This module implements that
threat against the simulated platform: a harvester that walks a token
database reading profiles, plus a privacy-impact summary the platform
side can use to size the exposure.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.graphapi.errors import GraphApiError
from repro.oauth.errors import InvalidTokenError


@dataclass
class HarvestedProfile:
    """Personal data obtained through one leaked token."""

    account_id: str
    name: str
    country: str
    friend_count: int


@dataclass
class HarvestReport:
    """Outcome of a scraping run."""

    profiles: List[HarvestedProfile] = field(default_factory=list)
    tokens_tried: int = 0
    tokens_dead: int = 0

    @property
    def accounts_exposed(self) -> int:
        return len(self.profiles)

    @property
    def countries(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for profile in self.profiles:
            counts[profile.country] = counts.get(profile.country, 0) + 1
        return counts

    @property
    def reachable_via_friend_graph(self) -> int:
        """Upper bound on second-hop reach (the malware-propagation
        concern of §8): sum of exposed accounts' friend counts."""
        return sum(p.friend_count for p in self.profiles)


class DataHarvester:
    """Reads personal data with a collusion network's token database.

    The harvester is an *attacker-side* tool: every read goes through
    the Graph API with the leaked token, from the attacker's IP, and is
    therefore visible in the request log — which is how a platform
    would detect scraping at scale.
    """

    def __init__(self, world, source_ip: str = "10.62.9.9",
                 rng: Optional[random.Random] = None) -> None:
        self.world = world
        self.source_ip = source_ip
        self.rng = rng or world.rng.stream("harvester")

    def harvest(self, token_db: Dict[str, str],
                limit: Optional[int] = None) -> HarvestReport:
        """Read up to ``limit`` members' profiles via their own tokens."""
        report = HarvestReport()
        members = list(token_db)
        self.rng.shuffle(members)
        if limit is not None:
            members = members[:limit]
        for member in members:
            token = token_db[member]
            report.tokens_tried += 1
            try:
                data = self.world.api.get_profile(
                    token, source_ip=self.source_ip).data
            except InvalidTokenError:
                report.tokens_dead += 1
                continue
            except GraphApiError:
                continue
            account = self.world.platform.get_account(data["id"])
            report.profiles.append(HarvestedProfile(
                account_id=data["id"],
                name=data["name"],
                country=data["country"],
                friend_count=len(account.friend_ids),
            ))
        return report
