"""Collusion-network ownership and self-promotion (§5.2).

The paper traced operators through WHOIS records and their social
accounts: 36% of domains hide behind privacy services, most disclosed
registrants sit in India/Pakistan/Indonesia, and the owners' own
accounts are huge — mg-likers.com's owner had 9M+ followers, with
timeline posts collecting hundreds of thousands of likes because the
networks quietly spend member tokens on their owner's content (the
honeypots were "frequently used to like the profile pictures and other
timeline posts of these Facebook accounts").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

#: Owner follower counts (paper scale) for the most visible operators;
#: every other milked network gets the default.
OWNER_FOLLOWERS: Dict[str, int] = {
    "mg-likers.com": 9_000_000,
    "hublaa.me": 2_500_000,
    "official-liker.net": 1_800_000,
    "djliker.com": 1_200_000,
}
DEFAULT_OWNER_FOLLOWERS = 150_000


@dataclass
class NetworkOwner:
    """The operator behind one collusion network."""

    domain: str
    account_id: str
    page_id: str
    display_name: str
    followers: int
    promo_post_ids: List[str]


def setup_owner(world, network, scale: float = 1.0) -> NetworkOwner:
    """Create the operator's account, fan page and promo posts, and wire
    self-promotion into the network."""
    domain = network.domain
    display_name = f"Owner of {domain}"
    followers = int(OWNER_FOLLOWERS.get(domain, DEFAULT_OWNER_FOLLOWERS)
                    * scale)
    record = world.whois.lookup(domain) if _has_whois(world, domain) else None
    country = (record.registrant_country if record
               and record.registrant_country else "IN")
    account = world.platform.register_account(display_name,  # reprolint: disable=RL301 — operator signup is the first-party web flow; no app token exists yet to meter
                                              country=country)
    account.follower_count = followers
    page = world.platform.create_page(account.account_id,  # reprolint: disable=RL301 — the operator creates their own official page through the first-party UI
                                      f"{domain} official")
    posts = [
        world.platform.create_post(account.account_id,  # reprolint: disable=RL301 — operator promo posts on their own page model the first-party UI, not app-mediated writes
                                   f"{domain} promo post {i + 1}")
        for i in range(3)
    ]
    owner = NetworkOwner(
        domain=domain,
        account_id=account.account_id,
        page_id=page.page_id,
        display_name=display_name,
        followers=followers,
        promo_post_ids=[p.post_id for p in posts],
    )
    network.owner = owner
    return owner


def _has_whois(world, domain: str) -> bool:
    try:
        world.whois.lookup(domain)
        return True
    except KeyError:
        return False


@dataclass(frozen=True)
class OwnershipRow:
    """One network's §5.2 ownership picture."""

    domain: str
    privacy_protected: bool
    registrant_name: Optional[str]
    registrant_country: Optional[str]
    nameserver_provider: str
    owner_followers: int
    owner_promo_likes: int


@dataclass
class OwnershipReport:
    rows: List[OwnershipRow]

    @property
    def privacy_protected_share(self) -> float:
        if not self.rows:
            return 0.0
        return (sum(r.privacy_protected for r in self.rows)
                / len(self.rows))

    def registrant_countries(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for row in self.rows:
            if not row.privacy_protected and row.registrant_country:
                counts[row.registrant_country] = (
                    counts.get(row.registrant_country, 0) + 1)
        return counts

    def render(self) -> str:
        lines = ["Ownership analysis (§5.2)"]
        for row in self.rows:
            who = ("(privacy protected)" if row.privacy_protected
                   else f"{row.registrant_name} [{row.registrant_country}]")
            lines.append(
                f"  {row.domain:<24} {who:<28} owner followers "
                f"{row.owner_followers:>10,}  promo likes "
                f"{row.owner_promo_likes:>7,}")
        lines.append(
            f"  privacy-protected domains: "
            f"{self.privacy_protected_share * 100:.0f}%")
        return "\n".join(lines)


def ownership_report(world, ecosystem) -> OwnershipReport:
    """Cross-reference WHOIS records with the owners' platform presence."""
    rows: List[OwnershipRow] = []
    for domain, network in ecosystem.networks.items():
        record = world.whois.lookup(domain)
        owner = getattr(network, "owner", None)
        promo_likes = 0
        followers = 0
        if owner is not None:
            followers = owner.followers
            for post_id in owner.promo_post_ids:
                promo_likes += world.platform.get_post(post_id).like_count
            promo_likes += world.platform.get_page(
                owner.page_id).like_count
        rows.append(OwnershipRow(
            domain=domain,
            privacy_protected=record.privacy_protected,
            registrant_name=record.registrant_name,
            registrant_country=record.registrant_country,
            nameserver_provider=record.nameserver_provider,
            owner_followers=followers,
            owner_promo_likes=promo_likes,
        ))
    rows.sort(key=lambda r: -r.owner_followers)
    return OwnershipReport(rows=rows)
