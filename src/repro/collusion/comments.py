"""Per-network comment dictionaries and the auto-comment generator.

Each collusion network owns a small, fixed dictionary of comments and
serves requests by sampling from it with replacement — which is exactly
what produces Table 6's signature: thousands of comments, a few dozen
unique strings, single-digit lexical richness.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from repro.collusion.wordbank import (
    PUNCTUATION_RIFFS,
    sample_phrase,
    spaced_out,
)


@dataclass(frozen=True)
class CommentStyle:
    """Tunable lexical profile of one network's dictionary.

    ``dictionary_size`` — unique comments the network ever posts;
    ``mean_words`` — average words per comment;
    ``non_dictionary_rate`` — share of junk tokens (Table 6: ~10-30%);
    ``punctuation_rate`` — chance a comment carries a punctuation riff;
    ``spaced_word_rate`` — chance of an "AW E S O M E"-style word.
    """

    dictionary_size: int = 40
    mean_words: int = 3
    non_dictionary_rate: float = 0.2
    punctuation_rate: float = 0.25
    spaced_word_rate: float = 0.05


class CommentDictionary:
    """The finite set of comment strings a network draws from."""

    def __init__(self, style: CommentStyle, rng: random.Random) -> None:
        if style.dictionary_size <= 0:
            raise ValueError("dictionary_size must be positive")
        self.style = style
        self._comments = self._build(style, rng)

    @staticmethod
    def _build(style: CommentStyle, rng: random.Random) -> List[str]:
        comments: List[str] = []
        seen = set()
        while len(comments) < style.dictionary_size:
            words = max(1, int(rng.gauss(style.mean_words, 1.0)))
            tokens = sample_phrase(rng, words, style.non_dictionary_rate)
            if tokens and rng.random() < style.spaced_word_rate:
                tokens[rng.randrange(len(tokens))] = spaced_out(
                    tokens[rng.randrange(len(tokens))])
            text = " ".join(tokens)
            if rng.random() < style.punctuation_rate:
                text = f"{text} {rng.choice(PUNCTUATION_RIFFS)}"
            if text not in seen:
                seen.add(text)
                comments.append(text)
        return comments

    @property
    def comments(self) -> List[str]:
        return list(self._comments)

    def __len__(self) -> int:
        return len(self._comments)

    def sample(self, rng: random.Random) -> str:
        """Draw one comment (with replacement)."""
        return rng.choice(self._comments)

    def sample_many(self, rng: random.Random, count: int) -> List[str]:
        return [self.sample(rng) for _ in range(count)]
