"""Vocabulary ingredients for collusion-network comment dictionaries.

Table 6 characterizes the comments collusion networks post: tiny finite
dictionaries (16-52 unique comments per network), low lexical richness
(<10% unique words), ~20% non-dictionary tokens (elongated words like
"bravooooo", leetspeak like "gr8", transliterated Hindi), and odd
punctuation.  The word bank provides those ingredient classes so a
generated dictionary hits the same statistics.
"""

from __future__ import annotations

import random
from typing import List

#: Plain English words commonly seen in autoliker comments.
ENGLISH_PRAISE = (
    "nice", "awesome", "great", "amazing", "cool", "super", "wow",
    "beautiful", "lovely", "perfect", "best", "good", "fantastic",
    "brilliant", "cute", "sweet", "stunning", "excellent", "wonderful",
    "fabulous", "superb", "incredible", "outstanding", "magnificent",
    "charming", "gorgeous", "impressive", "photo", "picture", "post",
    "status", "profile", "very", "really", "so", "much", "this", "is",
    "the", "one", "like", "love", "it", "you", "look", "looking",
    "keep", "going", "bro", "friend", "smile", "style", "king", "queen",
)

#: Elongated exclamations ("unnecessarily lengthened words").
ELONGATED = (
    "bravooooo", "ahhhhh", "wowwww", "niceeee", "cooool", "superrrr",
    "yesssss", "omggggg", "w00wwwwwwww", "heyyyyy", "uffff", "sooooo",
)

#: Leetspeak / SMS-style misspellings.
LEETSPEAK = (
    "gr8", "luv", "osm", "nyc", "pix", "thx", "plz", "fab", "dp",
    "fbk", "lyk", "kewl", "supa", "b4", "u", "ur", "msg",
)

#: Transliterated Hindi phrases (non-dictionary by construction).
HINDI_PHRASES = (
    "bahut badiya", "kya baat hai", "ekdum jhakaas", "mast hai",
    "sarye thak ke beth gye", "bhai zabardast", "dil khush ho gya",
    "kamaal ka pic", "bohot accha",
)

#: Nonsense strings ("large nonsensical words").
NONSENSE = (
    "bfewguvchieuwver", "qwkjhdkqwhd", "zxnmvbzxmnv", "plokmijnuhb",
)

#: Length-squared weights push sampling toward long words (ARI driver).
_PRAISE_WEIGHTS = tuple(len(word) ** 2 for word in ENGLISH_PRAISE)

#: Punctuation riffs appended to some comments.
PUNCTUATION_RIFFS = (
    "!!!", "...", "???", "?? !!", "<3", ":-)", "! ! !", "??",
)


def spaced_out(word: str) -> str:
    """"AW E S O M E"-style spacing of a word."""
    upper = word.upper()
    return upper[0] + " ".join(upper[1:])


def sample_phrase(rng: random.Random, words: int,
                  non_dictionary_rate: float) -> List[str]:
    """Draw ``words`` tokens mixing dictionary and junk vocabulary.

    ``non_dictionary_rate`` is the probability each token comes from a
    non-dictionary class (elongated / leet / Hindi / nonsense).
    """
    if words <= 0:
        raise ValueError(f"need at least one word, got {words}")
    tokens: List[str] = []
    while len(tokens) < words:
        if rng.random() < non_dictionary_rate:
            bucket = rng.choice((ELONGATED, LEETSPEAK, NONSENSE,
                                 HINDI_PHRASES))
            choice = rng.choice(bucket)
            # Multi-word phrases contribute one token so the realized
            # non-dictionary share tracks ``non_dictionary_rate``.
            tokens.append(rng.choice(choice.split()))
        else:
            # Weight toward longer praise words: autoliker comments are
            # dense with "magnificent"/"outstanding"-class vocabulary
            # (and elongations), which is what drives the surprisingly
            # high ARI values of Table 6.
            tokens.append(rng.choices(ENGLISH_PRAISE,
                                      weights=_PRAISE_WEIGHTS, k=1)[0])
    return tokens[:words]
