"""Per-network parameters, calibrated from the paper's published tables.

Encodes three datasets:

* :data:`TABLE2_SITES` — the 50 collusion-network sites with Alexa-style
  ranks and top-country visitor shares (Table 2, as printed — the paper's
  list contains two duplicate domains, which we keep for fidelity and
  dedupe where required);
* :data:`MILKED_PROFILES` — full behavioural profiles for the 22 networks
  the honeypots joined, with Table 4's workload numbers, Table 6's comment
  styles and the §6 network-infrastructure facts (IP pool sizes, ASes);
* :data:`SHORT_URL_SEEDS` — the 13 short URLs of Table 5 with their
  creation dates and click histories.

Membership pools are *calibrated*: Table 4's "membership size" is the
number of unique accounts the honeypots observed, which under random
token-pool sampling is a lower bound on the true pool.  The calibration
inverts the coverage formula ``U = P * (1 - exp(-L / P))`` (unique
accounts U after L like draws from a pool of size P) so that the
simulated milking campaign *observes* the paper's membership numbers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.collusion.comments import CommentStyle
from repro.collusion.evasion import RequestGate

# ---------------------------------------------------------------------------
# Autonomous systems used by collusion networks (§6.4)
# ---------------------------------------------------------------------------

#: (asn, name, country, is_bulletproof, base /16 prefix)
AS_PLAN: Tuple[Tuple[int, str, str, bool, str], ...] = (
    (64500, "BulletShield Hosting", "RU", True, "10.50.0.0"),
    (64501, "ArmorHost Networks", "UA", True, "10.51.0.0"),
    (64510, "GenericCloud", "US", False, "10.60.0.0"),
    (64511, "WebHostCo", "DE", False, "10.61.0.0"),
    (64512, "CheapVPS International", "NL", False, "10.62.0.0"),
    (64513, "SubcontinentHosting", "IN", False, "10.63.0.0"),
)

#: hublaa.me's pool spans the two bulletproof ASes (Fig. 8b).
BULLETPROOF_ASNS: Tuple[int, int] = (64500, 64501)


# ---------------------------------------------------------------------------
# Applications exploited by the networks
# ---------------------------------------------------------------------------

HTC_SENSE = "41158896424"
NOKIA_ACCOUNT = "200758583311692"
SONY_XPERIA = "104018109673165"
#: "Page Manager For iOS" appears only in Table 5 (used by autolike.vn);
#: it is registered as an extra susceptible app outside the top 100.
PAGE_MANAGER_IOS = "210831918949520"

#: Extra susceptible apps to register beyond the AppCatalog
#: (app_id, name, MAU, DAU).
EXTRA_APP_SPECS: Tuple[Tuple[str, str, int, int], ...] = (
    (PAGE_MANAGER_IOS, "Page Manager For iOS", 500_000, 50_000),
)


# ---------------------------------------------------------------------------
# Table 2 — the 50 collusion network sites
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SiteListing:
    """One Table 2 row."""

    domain: str
    alexa_rank: int  # absolute rank (the paper prints thousands)
    top_country: Optional[str]
    top_country_share: Optional[float]


def _row(domain: str, rank_k: float, country: Optional[str],
         share_pct: Optional[float]) -> SiteListing:
    return SiteListing(domain, int(rank_k * 1000), country,
                       None if share_pct is None else share_pct / 100.0)


TABLE2_SITES: Tuple[SiteListing, ...] = (
    _row("hublaa.me", 8, "IN", 18),
    _row("official-liker.net", 17, "IN", 26),
    _row("djliker.com", 39, "IN", 55),
    _row("autolikesgroups.com", 54, "IN", 30),
    _row("myliker.com", 55, "IN", 45),
    _row("mg-likers.com", 56, "IN", 50),
    _row("4liker.com", 81, "IN", 33),
    _row("fb-autolikers.com", 99, "IN", 44),
    _row("autolikerfb.com", 109, "IN", 62),
    _row("cyberlikes.com", 119, "IN", 78),
    _row("postliker.net", 132, "IN", 63),
    _row("oneliker.com", 136, "IN", 58),
    _row("f8-autoliker.com", 136, "IN", 74),
    _row("postlikers.com", 148, "IN", 83),
    _row("fblikess.com", 150, "IN", 64),
    _row("way2likes.com", 154, "IN", 74),
    _row("kdliker.com", 154, "IN", 80),
    _row("topautolike.com", 192, "IN", 60),
    _row("royaliker.net", 201, "IN", 86),
    _row("begeniyor.com", 205, "TR", 85),
    _row("autolike-us.com", 227, "IN", 52),
    _row("royaliker.net", 210, "IN", 59),  # duplicate as printed
    _row("autolike.in", 216, "IN", 74),
    _row("likelikego.com", 232, "IN", 52),
    _row("myfbliker.com", 238, "IN", 58),
    _row("vliker.com", 273, "IN", 43),
    _row("likermoo.com", 296, "IN", 62),
    _row("f8liker.com", 296, "IN", 80),
    _row("facebook-autoliker.com", 312, "IN", 87),
    _row("kingliker.com", 351, "IN", 72),
    _row("likeslo.net", 373, "IN", 61),
    _row("machineliker.com", 386, "IN", 59),
    _row("likerty.com", 393, "IN", 60),
    _row("monkeyliker.com", 410, "IN", 80),
    _row("vipautoliker.com", 448, "IN", 64),
    _row("likelo.me", 479, "IN", 16),
    _row("loveliker.com", 491, "IN", 59),
    _row("autoliker.com", 496, "IN", 56),
    _row("likerhub.com", 498, "IN", 69),
    _row("monsterlikes.com", 509, "IN", 82),
    _row("hacklike.net", 514, "VN", 57),
    _row("rockliker.net", 530, "IN", 92),
    _row("likepana.com", 545, "IN", 57),
    _row("autolikesub.com", 603, "VN", 92),
    _row("extreamliker.com", 687, "IN", 50),
    _row("autolikesub.com", 721, "VN", 84),  # duplicate as printed
    _row("autolike.vn", 969, "VN", 94),
    _row("fast-liker.com", 1208, None, None),
    _row("arabfblike.com", 1221, "EG", 43),
    _row("realliker.com", 1379, None, None),
)


def unique_table2_sites() -> List[SiteListing]:
    """Table 2 rows deduplicated by domain (first occurrence wins)."""
    seen = set()
    unique: List[SiteListing] = []
    for site in TABLE2_SITES:
        if site.domain not in seen:
            seen.add(site.domain)
            unique.append(site)
    return unique


# ---------------------------------------------------------------------------
# Membership pool calibration
# ---------------------------------------------------------------------------

def calibrate_pool_size(unique_target: int, total_draws: int) -> int:
    """Invert ``U = P * (1 - exp(-L/P))`` for the true pool size ``P``.

    ``unique_target`` is Table 4's membership size (what the honeypots
    observed); ``total_draws`` is the number of like draws the milking
    campaign makes (posts x likes/post).  Monotone in ``P`` with
    supremum ``total_draws``, so a bisection suffices.
    """
    if unique_target <= 0:
        raise ValueError("unique_target must be positive")
    if total_draws < unique_target:
        raise ValueError(
            f"cannot observe {unique_target} uniques with only "
            f"{total_draws} draws"
        )

    def observed(pool: float) -> float:
        return pool * (1.0 - math.exp(-total_draws / pool))

    lo, hi = float(unique_target), float(unique_target)
    while observed(hi) < unique_target and hi < unique_target * 1e6:
        hi *= 2
    for _ in range(80):
        mid = (lo + hi) / 2
        if observed(mid) < unique_target:
            lo = mid
        else:
            hi = mid
    return int(round(hi))


def calibrate_pool_size_by_requests(unique_target: int, requests: int,
                                    likes_per_request: int) -> int:
    """Invert the per-request coverage formula for the pool size ``P``.

    Each request draws ``likes_per_request`` *distinct* members, so after
    ``R`` requests the expected unique count is
    ``U = P * (1 - (1 - L/P) ** R)``.  This matters at small scale, where
    a single request can cover most of the pool and the Poisson
    approximation of :func:`calibrate_pool_size` undershoots.
    """
    if unique_target <= 0:
        raise ValueError("unique_target must be positive")
    if requests <= 0 or likes_per_request <= 0:
        raise ValueError("requests and likes_per_request must be positive")
    if requests * likes_per_request < unique_target:
        raise ValueError(
            f"cannot observe {unique_target} uniques with "
            f"{requests} x {likes_per_request} draws"
        )

    def observed(pool: float) -> float:
        take = min(likes_per_request, pool)
        return pool * (1.0 - (1.0 - take / pool) ** requests)

    lo, hi = float(unique_target), float(unique_target)
    while observed(hi) < unique_target and hi < unique_target * 1e6:
        hi *= 2
    for _ in range(80):
        mid = (lo + hi) / 2
        if observed(mid) < unique_target:
            lo = mid
        else:
            hi = mid
    return max(unique_target, int(round(hi)))


# ---------------------------------------------------------------------------
# The 22 milked networks (Table 4 + Table 6 + §6 infrastructure)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CollusionNetworkProfile:
    """Everything needed to instantiate one collusion network."""

    domain: str
    app_id: str
    # Table 4 milking workload & outcomes (paper scale).
    posts_milked: int
    likes_per_request: int
    membership_target: int
    outgoing_activities: int
    outgoing_target_accounts: int
    outgoing_target_pages: int
    # Request friction & availability.
    gate: RequestGate = field(default_factory=RequestGate)
    daily_request_limit: Optional[int] = None
    outage_rate: float = 0.0  # chance a request hits an outage
    # Comments (Table 6); None = no auto-comment service.
    comment_style: Optional[CommentStyle] = None
    comments_per_post: int = 0
    comment_posts_milked: int = 0
    # Delivery engine behaviour.
    retry_factor: float = 1.5
    token_reuse_bias: float = 0.0  # share of samples from the hot set
    hot_set_size: int = 40
    adaptation_days: int = 7  # days of errors before going uniform
    #: Anonymous member requests served per day through the charge-only
    #: path during the countermeasure campaign (the network's real
    #: workload beyond our honeypot requests).
    background_requests_per_day: int = 10
    # Replenishment in absolute members/day (§6.2: the daily trickle of
    # new and returning users is small compared to the pools).
    new_members_per_day: int = 20
    rejoins_per_day: int = 60
    # Network infrastructure (§6.4 / Fig. 8).
    ip_pool_size: int = 6
    asns: Tuple[int, ...] = (64510,)
    ip_usage: str = "zipf"  # "zipf" (few IPs dominate) or "uniform"
    # Ownership / web intel (§5).
    whois_privacy: bool = False
    registrant_country: Optional[str] = "IN"
    launch_days_before_epoch: int = 500

    @property
    def total_like_draws(self) -> int:
        return self.posts_milked * self.likes_per_request

    def pool_size(self, scale: float = 1.0) -> int:
        """True member-pool size needed to observe the Table 4 membership.

        Uses the request-based coverage inversion so the calibration
        stays accurate even at scales where one request covers a large
        share of the pool.
        """
        requests = max(1, round(self.posts_milked * scale))
        target = max(1, int(self.membership_target * scale))
        if requests * self.likes_per_request <= target:
            return requests * self.likes_per_request
        return calibrate_pool_size_by_requests(
            target, requests, self.likes_per_request)


def _style(dictionary_size: int, mean_words: int, non_dict: float,
           punctuation: float = 0.25) -> CommentStyle:
    return CommentStyle(
        dictionary_size=dictionary_size,
        mean_words=mean_words,
        non_dictionary_rate=non_dict,
        punctuation_rate=punctuation,
    )


MILKED_PROFILES: Tuple[CollusionNetworkProfile, ...] = (
    CollusionNetworkProfile(
        domain="hublaa.me", app_id=HTC_SENSE,
        posts_milked=1421, likes_per_request=350, membership_target=294_949,
        outgoing_activities=145, outgoing_target_accounts=46,
        outgoing_target_pages=47,
        gate=RequestGate(min_delay=420, max_delay=600,
                         captcha_required=True, redirect_hops=2),
        token_reuse_bias=0.0,  # huge pool, uniform sampling (§6.1)
        retry_factor=1.2,
        background_requests_per_day=40,
        new_members_per_day=40, rejoins_per_day=120,
        ip_pool_size=6000, asns=BULLETPROOF_ASNS, ip_usage="uniform",
        whois_privacy=True, registrant_country=None,
        launch_days_before_epoch=180,
    ),
    CollusionNetworkProfile(
        domain="official-liker.net", app_id=HTC_SENSE,
        posts_milked=1757, likes_per_request=390, membership_target=233_161,
        outgoing_activities=1955, outgoing_target_accounts=846,
        outgoing_target_pages=253,
        gate=RequestGate(min_delay=300, max_delay=540,
                         captcha_required=True, redirect_hops=1),
        token_reuse_bias=0.7, hot_set_size=30, adaptation_days=7,
        background_requests_per_day=60,
        new_members_per_day=30, rejoins_per_day=90,
        ip_pool_size=8, asns=(64510,), ip_usage="zipf",
        whois_privacy=True, registrant_country=None,
        launch_days_before_epoch=600,
    ),
    CollusionNetworkProfile(
        domain="mg-likers.com", app_id=HTC_SENSE,
        posts_milked=1537, likes_per_request=247, membership_target=177_665,
        outgoing_activities=1524, outgoing_target_accounts=911,
        outgoing_target_pages=63,
        gate=RequestGate(min_delay=300, max_delay=600,
                         captcha_required=True, redirect_hops=2),
        comment_style=_style(16, 3, 0.20), comments_per_post=17,
        comment_posts_milked=120,
        token_reuse_bias=0.5, hot_set_size=60,
        ip_pool_size=12, asns=(64511,),
        registrant_country="IN", launch_days_before_epoch=510,
    ),
    CollusionNetworkProfile(
        domain="monkeyliker.com", app_id=HTC_SENSE,
        posts_milked=710, likes_per_request=233, membership_target=137_048,
        outgoing_activities=956, outgoing_target_accounts=356,
        outgoing_target_pages=19,
        daily_request_limit=10,
        comment_style=_style(45, 3, 0.22), comments_per_post=9,
        comment_posts_milked=115,
        ip_pool_size=6, asns=(64511,),
        registrant_country="IN", launch_days_before_epoch=420,
    ),
    CollusionNetworkProfile(
        domain="f8-autoliker.com", app_id=HTC_SENSE,
        posts_milked=1311, likes_per_request=253, membership_target=72_157,
        outgoing_activities=2542, outgoing_target_accounts=1254,
        outgoing_target_pages=118,
        gate=RequestGate(min_delay=300, max_delay=480),
        ip_pool_size=10, asns=(64512,),
        registrant_country="PK", launch_days_before_epoch=460,
    ),
    CollusionNetworkProfile(
        domain="djliker.com", app_id=HTC_SENSE,
        posts_milked=471, likes_per_request=149, membership_target=61_450,
        outgoing_activities=360, outgoing_target_accounts=316,
        outgoing_target_pages=23,
        daily_request_limit=10,
        comment_style=_style(52, 3, 0.20), comments_per_post=9,
        comment_posts_milked=104,
        ip_pool_size=5, asns=(64513,),
        registrant_country="IN", launch_days_before_epoch=510,
    ),
    CollusionNetworkProfile(
        domain="autolikesgroups.com", app_id=HTC_SENSE,
        posts_milked=774, likes_per_request=261, membership_target=41_015,
        outgoing_activities=1857, outgoing_target_accounts=885,
        outgoing_target_pages=189,
        ip_pool_size=7, asns=(64512,),
        whois_privacy=True, registrant_country=None,
        launch_days_before_epoch=380,
    ),
    CollusionNetworkProfile(
        domain="4liker.com", app_id=HTC_SENSE,
        posts_milked=269, likes_per_request=264, membership_target=23_110,
        outgoing_activities=2254, outgoing_target_accounts=1211,
        outgoing_target_pages=301,
        ip_pool_size=6, asns=(64513,),
        registrant_country="IN", launch_days_before_epoch=540,
    ),
    CollusionNetworkProfile(
        domain="myliker.com", app_id=HTC_SENSE,
        posts_milked=320, likes_per_request=102, membership_target=18_514,
        outgoing_activities=1727, outgoing_target_accounts=983,
        outgoing_target_pages=33,
        comment_style=_style(42, 3, 0.16), comments_per_post=19,
        comment_posts_milked=128,
        ip_pool_size=4, asns=(64513,),
        registrant_country="IN", launch_days_before_epoch=430,
    ),
    CollusionNetworkProfile(
        domain="kdliker.com", app_id=HTC_SENSE,
        posts_milked=599, likes_per_request=138, membership_target=18_421,
        outgoing_activities=1444, outgoing_target_accounts=626,
        outgoing_target_pages=79,
        comment_style=_style(31, 3, 0.28), comments_per_post=47,
        comment_posts_milked=119,
        ip_pool_size=5, asns=(64511,),
        registrant_country="IN", launch_days_before_epoch=400,
    ),
    CollusionNetworkProfile(
        domain="oneliker.com", app_id=HTC_SENSE,
        posts_milked=334, likes_per_request=72, membership_target=18_013,
        outgoing_activities=956, outgoing_target_accounts=483,
        outgoing_target_pages=81,
        ip_pool_size=4, asns=(64510,),
        registrant_country="IN", launch_days_before_epoch=310,
    ),
    CollusionNetworkProfile(
        domain="fb-autolikers.com", app_id=NOKIA_ACCOUNT,
        posts_milked=244, likes_per_request=80, membership_target=16_234,
        outgoing_activities=621, outgoing_target_accounts=397,
        outgoing_target_pages=32,
        ip_pool_size=4, asns=(64512,),
        registrant_country="ID", launch_days_before_epoch=500,
    ),
    CollusionNetworkProfile(
        domain="autolike.vn", app_id=PAGE_MANAGER_IOS,
        posts_milked=139, likes_per_request=254, membership_target=14_892,
        outgoing_activities=2822, outgoing_target_accounts=1382,
        outgoing_target_pages=144,
        ip_pool_size=6, asns=(64512,),
        registrant_country="VN", launch_days_before_epoch=390,
    ),
    CollusionNetworkProfile(
        domain="monsterlikes.com", app_id=HTC_SENSE,
        posts_milked=495, likes_per_request=146, membership_target=5_168,
        outgoing_activities=2107, outgoing_target_accounts=671,
        outgoing_target_pages=39,
        comment_style=_style(41, 4, 0.10), comments_per_post=9,
        comment_posts_milked=100,
        ip_pool_size=3, asns=(64511,),
        whois_privacy=True, registrant_country=None,
        launch_days_before_epoch=280,
    ),
    CollusionNetworkProfile(
        domain="postlikers.com", app_id=HTC_SENSE,
        posts_milked=96, likes_per_request=89, membership_target=4_656,
        outgoing_activities=2590, outgoing_target_accounts=1543,
        outgoing_target_pages=94,
        ip_pool_size=3, asns=(64513,),
        registrant_country="IN", launch_days_before_epoch=290,
    ),
    CollusionNetworkProfile(
        domain="facebook-autoliker.com", app_id=HTC_SENSE,
        posts_milked=132, likes_per_request=33, membership_target=3_108,
        outgoing_activities=2403, outgoing_target_accounts=1757,
        outgoing_target_pages=15,
        ip_pool_size=2, asns=(64510,),
        registrant_country="IN", launch_days_before_epoch=330,
    ),
    CollusionNetworkProfile(
        domain="realliker.com", app_id=HTC_SENSE,
        posts_milked=105, likes_per_request=187, membership_target=2_860,
        outgoing_activities=2362, outgoing_target_accounts=846,
        outgoing_target_pages=61,
        ip_pool_size=3, asns=(64511,),
        whois_privacy=True, registrant_country=None,
        launch_days_before_epoch=285,
    ),
    CollusionNetworkProfile(
        domain="autolikesub.com", app_id=SONY_XPERIA,
        posts_milked=286, likes_per_request=88, membership_target=2_379,
        outgoing_activities=1531, outgoing_target_accounts=717,
        outgoing_target_pages=100,
        ip_pool_size=3, asns=(64512,),
        registrant_country="VN", launch_days_before_epoch=260,
    ),
    CollusionNetworkProfile(
        domain="kingliker.com", app_id=HTC_SENSE,
        posts_milked=107, likes_per_request=47, membership_target=2_243,
        outgoing_activities=1245, outgoing_target_accounts=587,
        outgoing_target_pages=136,
        ip_pool_size=2, asns=(64513,),
        registrant_country="IN", launch_days_before_epoch=270,
    ),
    CollusionNetworkProfile(
        domain="rockliker.net", app_id=HTC_SENSE,
        posts_milked=99, likes_per_request=44, membership_target=1_480,
        outgoing_activities=82, outgoing_target_accounts=39,
        outgoing_target_pages=1,
        ip_pool_size=2, asns=(64510,),
        registrant_country="IN", launch_days_before_epoch=240,
    ),
    CollusionNetworkProfile(
        domain="arabfblike.com", app_id=HTC_SENSE,
        posts_milked=311, likes_per_request=14, membership_target=1_328,
        outgoing_activities=68, outgoing_target_accounts=31,
        outgoing_target_pages=14,
        outage_rate=0.25,  # "suffers from intermittent outages" (§4.1)
        comment_style=_style(37, 3, 0.29), comments_per_post=2,
        comment_posts_milked=130,
        ip_pool_size=2, asns=(64511,),
        registrant_country="EG", launch_days_before_epoch=300,
    ),
    CollusionNetworkProfile(
        domain="fast-liker.com", app_id=HTC_SENSE,
        posts_milked=232, likes_per_request=44, membership_target=834,
        outgoing_activities=1472, outgoing_target_accounts=572,
        outgoing_target_pages=102,
        ip_pool_size=2, asns=(64510,),
        whois_privacy=True, registrant_country=None,
        launch_days_before_epoch=220,
    ),
)


def profile_for(domain: str) -> CollusionNetworkProfile:
    for profile in MILKED_PROFILES:
        if profile.domain == domain:
            return profile
    raise KeyError(f"no milked profile for {domain}")


# ---------------------------------------------------------------------------
# Table 5 — short URLs
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ShortUrlSeed:
    """One Table 5 row, expressed relative to the simulation epoch."""

    label: str  # the paper's goo.gl slug (display only)
    days_before_epoch: int  # creation date offset
    seed_clicks: int  # click history accrued before the epoch
    app_id: str
    referrer: Optional[str]
    long_url_key: str  # short URLs sharing a key share the long URL


# Creation dates relative to 2015-11-01 (the simulation epoch).
SHORT_URL_SEEDS: Tuple[ShortUrlSeed, ...] = (
    ShortUrlSeed("goo.gl/jZ7Nyl", 508, 147_959_735, HTC_SENSE,
                 "mg-likers.com", "htc-dialog-a"),
    ShortUrlSeed("goo.gl/4GYbBl", 489, 64_493_698, HTC_SENSE,
                 "djliker.com", "htc-dialog-a"),
    ShortUrlSeed("goo.gl/rHnKIv", 182, 28_511_756, HTC_SENSE,
                 "sys.hublaa.me", "htc-dialog-b"),
    ShortUrlSeed("goo.gl/2hbUps", 393, 7_000_579, PAGE_MANAGER_IOS,
                 "autolike.vn", "pagemanager-dialog"),
    ShortUrlSeed("goo.gl/KJnSnH", 347, 7_582_494, HTC_SENSE,
                 "m.machineliker.com", "htc-dialog-c"),
    ShortUrlSeed("goo.gl/QfLHlq", 506, 2_269_148, HTC_SENSE,
                 "begeniyor.com", "htc-dialog-a"),
    ShortUrlSeed("goo.gl/zsaJ61", 162, 2_721_864, HTC_SENSE,
                 "www.royaliker.net", "htc-dialog-d"),
    ShortUrlSeed("goo.gl/civ2CS", 307, 1_288_801, HTC_SENSE,
                 "oneliker.com", "htc-dialog-e"),
    ShortUrlSeed("goo.gl/ZQwU5e", 498, 1_005_471, NOKIA_ACCOUNT,
                 "adf.ly", "nokia-dialog"),
    ShortUrlSeed("goo.gl/nC9ciz", 56, 1_009_801, SONY_XPERIA,
                 "refer.autolikerfb.com", "xperia-dialog-a"),
    ShortUrlSeed("goo.gl/kKPCNy", 281, 297_915, HTC_SENSE,
                 "realliker.com", "htc-dialog-a"),
    ShortUrlSeed("goo.gl/uIv2OS", 273, 355_405, SONY_XPERIA,
                 None, "xperia-dialog-b"),
    ShortUrlSeed("goo.gl/5XbAaz", 279, 165_345, HTC_SENSE,
                 "postlikers.com", "htc-dialog-f"),
)

#: Long-URL click totals from Table 5 that exceed the sum of the listed
#: short URLs (unlisted short links point at the same dialog); the
#: remainder is seeded through one synthetic "unlisted" link per key.
LONG_URL_CLICK_TOTALS: Dict[str, int] = {
    "htc-dialog-a": 236_194_576,
    "htc-dialog-b": 29_211_768,
    "pagemanager-dialog": 7_289_920,
    "htc-dialog-c": 8_223_464,
    "htc-dialog-d": 2_766_805,
    "htc-dialog-e": 1_288_902,
    "nokia-dialog": 1_005_698,
    "xperia-dialog-a": 1_034_299,
    "xperia-dialog-b": 1_019_830,
    "htc-dialog-f": 1_887_940,
}

#: Which milked network each short URL's ongoing clicks come from
#: (referrer domain -> network domain); None referrers map to nothing.
REFERRER_TO_NETWORK: Dict[str, str] = {
    "mg-likers.com": "mg-likers.com",
    "djliker.com": "djliker.com",
    "sys.hublaa.me": "hublaa.me",
    "autolike.vn": "autolike.vn",
    "oneliker.com": "oneliker.com",
    "realliker.com": "realliker.com",
    "postlikers.com": "postlikers.com",
}
