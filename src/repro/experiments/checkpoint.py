"""Per-job experiment checkpoints for crash-tolerant study runs.

A :class:`CheckpointStore` persists each finished experiment's result
object to its own pickle file, written atomically (tmp file +
``os.replace``) so a crash mid-write can never corrupt a completed
checkpoint.  A ``manifest.json`` fingerprint (seed, scale, day counts,
fault plan) guards ``--resume`` against mixing checkpoints from a
different study configuration.

The store deliberately keeps no in-memory cache of result objects: a
resumed run re-reads from disk, which is exactly the crash-recovery
path we want exercised.
"""

from __future__ import annotations

import json
import os
import pickle
from typing import Any, Dict, List, Optional


class _Missing:
    """Sentinel for "no checkpoint" (distinct from a stored None)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<missing checkpoint>"


#: Returned by :meth:`CheckpointStore.load` when no usable checkpoint
#: exists for the job.
MISSING = _Missing()

_MANIFEST = "manifest.json"
_SUFFIX = ".pkl"


class CheckpointStore:
    """Atomic per-job result checkpoints under one directory."""

    def __init__(self, directory: str,
                 fingerprint: Optional[Dict[str, Any]] = None) -> None:
        self.directory = directory
        self.fingerprint = fingerprint
        #: ``load`` outcomes, for the run summary: checkpoints reused
        #: vs jobs that had to (re)run.
        self.hits = 0
        self.misses = 0
        os.makedirs(directory, exist_ok=True)

    # ------------------------------------------------------------------
    # Manifest / fingerprint
    # ------------------------------------------------------------------
    def _manifest_path(self) -> str:
        return os.path.join(self.directory, _MANIFEST)

    def write_manifest(self) -> None:
        if self.fingerprint is None:
            return
        payload = json.dumps(self.fingerprint, indent=2, sort_keys=True)
        tmp = self._manifest_path() + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self._manifest_path())

    def stored_fingerprint(self) -> Optional[Dict[str, Any]]:
        try:
            with open(self._manifest_path(), "r", encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, ValueError):
            return None

    def matches(self) -> bool:
        """Whether on-disk checkpoints belong to this configuration."""
        if self.fingerprint is None:
            return True
        stored = self.stored_fingerprint()
        if stored is None:
            # Empty/new directory: nothing to conflict with.
            return not self.completed()
        return stored == self.fingerprint

    # ------------------------------------------------------------------
    # Job checkpoints
    # ------------------------------------------------------------------
    def _path(self, name: str) -> str:
        if not name or os.sep in name or name.startswith("."):
            raise ValueError(f"bad checkpoint name: {name!r}")
        return os.path.join(self.directory, name + _SUFFIX)

    def save(self, name: str, result: Any) -> None:
        """Atomically persist one job's result.

        The temp file is fsynced *before* the rename: ``os.replace`` is
        atomic for the directory entry but says nothing about the data
        blocks, and a crash between rename and writeback would leave a
        correctly-named, partially-empty checkpoint — exactly the
        corruption the atomic dance exists to rule out.
        """
        path = self._path(name)
        tmp = path + ".tmp"
        with open(tmp, "wb") as handle:
            pickle.dump(result, handle, protocol=pickle.HIGHEST_PROTOCOL)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)

    def load(self, name: str) -> Any:
        """The stored result, or :data:`MISSING` if absent/corrupt."""
        try:
            with open(self._path(name), "rb") as handle:
                result = pickle.load(handle)
        except FileNotFoundError:
            self.misses += 1
            return MISSING
        # Annotated salvage path: unpickling a torn/stale checkpoint can
        # raise nearly anything, and "treat as never ran, re-run the
        # job" is the crash-recovery contract this store exists for.
        except Exception:  # reprolint: disable=RL005 — torn pickle ⇒ MISSING
            self.misses += 1
            return MISSING
        self.hits += 1
        return result

    def completed(self) -> List[str]:
        """Names of jobs with a checkpoint on disk (sorted)."""
        try:
            entries = os.listdir(self.directory)
        except OSError:
            return []
        return sorted(entry[:-len(_SUFFIX)] for entry in entries
                      if entry.endswith(_SUFFIX))

    def clear(self) -> None:
        """Drop every checkpoint (fresh, non-resumed run)."""
        for entry in self.completed():
            try:
                os.remove(self._path(entry))
            except OSError:  # pragma: no cover - racy fs
                pass
        try:
            os.remove(self._manifest_path())
        except OSError:
            pass
