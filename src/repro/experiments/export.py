"""Serialize experiment results to JSON / CSV for downstream plotting."""

from __future__ import annotations

import csv
import dataclasses
import io
import json
from typing import Any, Dict, List


def _plain(value: Any) -> Any:
    """Recursively convert results into JSON-friendly structures."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: _plain(getattr(value, f.name))
                for f in dataclasses.fields(value)}
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_plain(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if hasattr(value, "value"):  # enums
        return value.value
    return str(value)


def report_to_dict(report) -> Dict[str, Any]:
    """A StudyReport as one JSON-ready dictionary (skipping honeypot
    bookkeeping objects that carry no analytical value)."""
    out: Dict[str, Any] = {}
    for name in ("table1", "table2", "table3", "table4", "table5",
                 "table6", "fig4", "fig5", "fig6", "fig7", "fig8"):
        result = getattr(report, name, None)
        if result is not None:
            out[name] = _plain(result)
    return out


def report_to_json(report, indent: int = 2) -> str:
    return json.dumps(report_to_dict(report), indent=indent,
                      sort_keys=True)


def table4_to_csv(table4_result) -> str:
    """Table 4 rows as CSV text."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow([
        "collusion_network", "posts", "likes", "avg_likes_per_post",
        "outgoing_activities", "target_accounts", "target_pages",
        "membership",
    ])
    for row in table4_result.rows:
        writer.writerow([
            row.domain, row.posts_submitted, row.likes,
            f"{row.avg_likes_per_post:.1f}", row.outgoing_activities,
            row.outgoing_target_accounts, row.outgoing_target_pages,
            row.membership_size,
        ])
    return buffer.getvalue()


def fig5_series_to_csv(fig5_result) -> str:
    """Fig. 5 daily series as CSV (day, one column per network)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    domains = sorted(fig5_result.series)
    writer.writerow(["day"] + domains)
    length = max((len(fig5_result.series[d]) for d in domains), default=0)
    for day in range(length):
        row: List[Any] = [day + 1]
        for domain in domains:
            series = fig5_result.series[domain]
            row.append(f"{series[day]:.1f}" if day < len(series) else "")
        writer.writerow(row)
    return buffer.getvalue()


def fig4_curves_to_csv(fig4_result) -> str:
    """Fig. 4 cumulative curves as CSV (long format)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["network", "post_index", "cumulative_likes",
                     "cumulative_unique_accounts"])
    for domain, curve in fig4_result.curves.items():
        for i, (likes, unique) in enumerate(
                zip(curve.cumulative_likes, curve.cumulative_unique)):
            writer.writerow([domain, i + 1, likes, unique])
    return buffer.getvalue()
