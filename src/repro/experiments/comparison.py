"""Paper-vs-measured scorecard.

Encodes the paper's published values and checks a finished
:class:`~repro.experiments.runner.StudyReport` against them, separating
*exact* expectations (counts that must match at any scale) from *shape*
expectations (orderings, ratios, crossovers) and *scaled* expectations
(absolute counts compared after multiplying by the study scale).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.collusion.profiles import MILKED_PROFILES


@dataclass
class Check:
    """One comparison between the paper and the reproduction."""

    experiment: str
    name: str
    expected: str
    measured: str
    passed: bool


@dataclass
class Scorecard:
    checks: List[Check] = field(default_factory=list)

    def add(self, experiment: str, name: str, expected, measured,
            passed: bool) -> None:
        self.checks.append(Check(experiment, name, str(expected),
                                 str(measured), bool(passed)))

    @property
    def passed(self) -> int:
        return sum(c.passed for c in self.checks)

    @property
    def failed(self) -> int:
        return len(self.checks) - self.passed

    def failures(self) -> List[Check]:
        return [c for c in self.checks if not c.passed]

    def render(self) -> str:
        lines = [f"Reproduction scorecard: {self.passed}/"
                 f"{len(self.checks)} checks passed"]
        current = None
        for check in self.checks:
            if check.experiment != current:
                current = check.experiment
                lines.append(f"  {current}")
            mark = "ok " if check.passed else "FAIL"
            lines.append(f"    [{mark}] {check.name}: paper "
                         f"{check.expected}, measured {check.measured}")
        return "\n".join(lines)


def _within(measured: float, expected: float, rel: float) -> bool:
    if expected == 0:
        return measured == 0
    return abs(measured - expected) <= rel * abs(expected)


def score_report(report, scale: float) -> Scorecard:
    """Score every populated experiment in ``report``."""
    card = Scorecard()
    if report.table1 is not None:
        _score_table1(card, report.table1)
    if report.table2 is not None:
        _score_table2(card, report.table2)
    if report.table3 is not None:
        _score_table3(card, report.table3)
    if report.table4 is not None:
        _score_table4(card, report.table4, scale)
    if report.table5 is not None:
        _score_table5(card, report.table5)
    if report.table6 is not None:
        _score_table6(card, report.table6)
    if report.fig4 is not None:
        _score_fig4(card, report.fig4)
    if report.fig5 is not None:
        _score_fig5(card, report.fig5)
    if report.fig6 is not None:
        _score_fig6(card, report.fig6)
    if report.fig8 is not None:
        _score_fig8(card, report.fig8)
    return card


def _score_table1(card: Scorecard, result) -> None:
    card.add("Table 1", "susceptible apps", 55, result.susceptible,
             result.susceptible == 55)
    card.add("Table 1", "short-term susceptible", 46,
             result.susceptible_short_term,
             result.susceptible_short_term == 46)
    card.add("Table 1", "long-term susceptible", 9,
             result.susceptible_long_term,
             result.susceptible_long_term == 9)
    top = result.rows[0] if result.rows else ("", "", 0)
    card.add("Table 1", "top app", "Spotify 50M MAU",
             f"{top[1]} {top[2]:,}",
             top[1] == "Spotify" and top[2] == 50_000_000)


def _score_table2(card: Scorecard, result) -> None:
    top = result.rows[0][0] if result.rows else ""
    card.add("Table 2", "most popular network", "hublaa.me", top,
             top == "hublaa.me")
    in_top = [r for r in result.rows[:8] if r[1] <= 140_000]
    card.add("Table 2", "top-8 within ~100K rank", "8 sites",
             f"{len(in_top)} sites", len(in_top) == 8)
    countries = [r[2] for r in result.rows if r[2]]
    share = countries.count("IN") / len(countries) if countries else 0
    card.add("Table 2", "India-dominated", ">70% of sites",
             f"{share:.0%}", share > 0.7)


def _score_table3(card: Scorecard, result) -> None:
    rows = {r.name: r for r in result.rows}
    ordered = (rows["HTC Sense"].dau > rows["Nokia Account"].dau
               > rows["Sony Xperia smartphone"].dau)
    card.add("Table 3", "DAU ordering HTC > Nokia > Sony",
             "1M > 100K > 10K",
             " > ".join(str(r.dau) for r in result.rows), ordered)
    ranks = (rows["HTC Sense"].dau_rank < rows["Nokia Account"].dau_rank
             < rows["Sony Xperia smartphone"].dau_rank)
    card.add("Table 3", "DAU rank ordering", "40 < 249 < 866",
             " < ".join(str(r.dau_rank) for r in result.rows), ranks)


def _score_table4(card: Scorecard, result, scale: float) -> None:
    paper = {p.domain: p for p in MILKED_PROFILES}
    domains = [r.domain for r in result.rows]
    expected_order = sorted(paper,
                            key=lambda d: -paper[d].membership_target)
    card.add("Table 4", "membership ordering (top 5)",
             expected_order[:5], domains[:5],
             domains[:5] == expected_order[:5])
    for domain in ("hublaa.me", "official-liker.net", "mg-likers.com"):
        row = result.row_for(domain)
        quota = paper[domain].likes_per_request
        card.add("Table 4", f"{domain} likes/post", quota,
                 round(row.avg_likes_per_post),
                 _within(row.avg_likes_per_post, quota, 0.1))
        target = paper[domain].membership_target * scale
        card.add("Table 4", f"{domain} membership (scaled)",
                 round(target), row.membership_size,
                 _within(row.membership_size, target, 0.25))
    overall = (result.total_likes / result.total_posts
               if result.total_posts else 0)
    card.add("Table 4", "overall avg likes/post", 238, round(overall),
             _within(overall, 238, 0.15))
    overlap = 1 - result.unique_accounts / result.total_memberships
    card.add("Table 4", "cross-network overlap exists", ">0",
             f"{overlap:.1%}", overlap > 0)


def _score_table5(card: Scorecard, result) -> None:
    top = result.rows[0]
    card.add("Table 5", "top link", "goo.gl/jZ7Nyl ~148M clicks",
             f"{top.label} {top.report.short_url_clicks:,}",
             top.label == "goo.gl/jZ7Nyl"
             and top.report.short_url_clicks >= 147_959_735)
    card.add("Table 5", "unique long URL clicks", ">289M",
             f"{result.total_long_url_clicks():,}",
             result.total_long_url_clicks() > 289_000_000)


def _score_table6(card: Scorecard, result) -> None:
    card.add("Table 6", "auto-comment networks", 7,
             len(result.per_network), len(result.per_network) == 7)
    card.add("Table 6", "unique comment share", "~1.4% (low)",
             f"{result.overall.unique_comment_pct:.1f}%",
             result.overall.unique_comment_pct < 15)
    card.add("Table 6", "non-dictionary words", "20.6% (~10-30%)",
             f"{result.overall.non_dictionary_pct:.1f}%",
             8 < result.overall.non_dictionary_pct < 40)


def _score_fig4(card: Scorecard, result) -> None:
    for domain, curve in result.curves.items():
        rate = curve.new_unique_rate()
        card.add("Fig 4", f"{domain} diminishing returns",
                 "tail new-unique rate << 1", f"{rate:.2f}", rate < 0.9)


def _phase_avg_or_none(result, domain: str, phase: str):
    try:
        return result.phase_avg(domain, phase)
    except KeyError:
        return None


def _score_fig5(card: Scorecard, result) -> None:
    official = "official-liker.net"
    hublaa = "hublaa.me"
    if official in result.phases:
        base = _phase_avg_or_none(result, official, "baseline")
        if base:
            card.add("Fig 5", "official baseline quota", 390,
                     round(base), _within(base, 390, 0.05))
        rate = _phase_avg_or_none(result, official,
                                  "reduced token rate limit")
        if base and rate is not None:
            card.add("Fig 5", "official rate-limit dip",
                     "<85% of baseline", round(rate), rate < 0.85 * base)
        ip = _phase_avg_or_none(result, official, "IP rate limits")
        if base and ip is not None:
            card.add("Fig 5", "official killed by IP limits",
                     "<10% of baseline", round(ip), ip < 0.1 * base)
    if hublaa in result.phases:
        base = _phase_avg_or_none(result, hublaa, "baseline")
        rate = _phase_avg_or_none(result, hublaa,
                                  "reduced token rate limit")
        if base and rate is not None:
            card.add("Fig 5", "hublaa unaffected by rate limit",
                     ">95% of baseline", round(rate),
                     rate > 0.95 * base)
        ip = _phase_avg_or_none(result, hublaa, "IP rate limits")
        if ip is not None:
            card.add("Fig 5", "hublaa survives IP limits", ">0",
                     round(ip), ip > 0)
        asb = _phase_avg_or_none(result, hublaa, "AS blocking")
        if asb is not None:
            card.add("Fig 5", "hublaa ceased by AS blocking", 0,
                     round(asb), asb == 0)


def _score_fig6(card: Scorecard, result) -> None:
    hublaa = result.histograms.get("hublaa.me")
    official = result.histograms.get("official-liker.net")
    if hublaa and official:
        card.add("Fig 6", "hublaa repeats accounts less than official",
                 "76% vs 30% at <=1 post",
                 f"{hublaa.share_at_most(1):.0%} vs "
                 f"{official.share_at_most(1):.0%}",
                 hublaa.share_at_most(1) > official.share_at_most(1))


def _score_fig8(card: Scorecard, result) -> None:
    official = result.breakdowns.get("official-liker.net")
    hublaa = result.breakdowns.get("hublaa.me")
    if official:
        card.add("Fig 8", "official concentrated on few IPs",
                 "vast majority via a few IPs",
                 f"top-3 carry {official.top_ip_share():.0%}",
                 official.top_ip_share() > 0.5)
    if hublaa:
        card.add("Fig 8", "hublaa spans two bulletproof ASes", 2,
                 hublaa.distinct_asns, hublaa.distinct_asns == 2)
