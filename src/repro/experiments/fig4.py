"""Figure 4 — cumulative likes and unique accounts while milking.

Paper result: per-request like counts stay flat (fixed likes/request), so
cumulative likes grow linearly with post index while the cumulative
unique-account curve bends: repetition increases as the token pool is
exhausted (diminishing returns of milking).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.honeypot.milker import MilkingResults

#: The three networks plotted in the paper's Fig. 4.
DEFAULT_NETWORKS = ("official-liker.net", "mg-likers.com",
                    "f8-autoliker.com")


@dataclass
class MilkingCurve:
    """One subplot: cumulative series indexed by post number."""

    domain: str
    cumulative_likes: List[int]
    cumulative_unique: List[int]

    @property
    def posts(self) -> int:
        return len(self.cumulative_likes)

    def new_unique_rate(self, tail_fraction: float = 0.2) -> float:
        """New unique accounts per like over the trailing posts — the
        diminishing-returns measure (≈1 early, →0 when milked dry)."""
        if self.posts < 2:
            return 1.0
        start = max(1, int(self.posts * (1 - tail_fraction)))
        dlikes = self.cumulative_likes[-1] - self.cumulative_likes[start - 1]
        dunique = (self.cumulative_unique[-1]
                   - self.cumulative_unique[start - 1])
        return dunique / dlikes if dlikes else 0.0


@dataclass
class Fig4Result:
    curves: Dict[str, MilkingCurve]

    def render(self) -> str:
        lines = ["Figure 4: cumulative likes / unique accounts vs post index"]
        for domain, curve in self.curves.items():
            lines.append(
                f"  {domain}: {curve.posts} posts, "
                f"{curve.cumulative_likes[-1]:,} likes, "
                f"{curve.cumulative_unique[-1]:,} unique accounts, "
                f"tail new-unique rate {curve.new_unique_rate():.3f}"
            )
        return "\n".join(lines)


def run(results: MilkingResults,
        networks: Sequence[str] = DEFAULT_NETWORKS) -> Fig4Result:
    """Build the cumulative curves from per-post milking records."""
    curves: Dict[str, MilkingCurve] = {}
    for domain in networks:
        r = results.per_network[domain]
        cumulative_likes: List[int] = []
        total = 0
        for likes in r.likes_per_post:
            total += likes
            cumulative_likes.append(total)
        curves[domain] = MilkingCurve(
            domain=domain,
            cumulative_likes=cumulative_likes,
            cumulative_unique=list(r.cumulative_unique),
        )
    return Fig4Result(curves=curves)
