"""Table 3 — applications exploited by popular collusion networks.

Paper result: HTC Sense (1M DAU, rank 40), Nokia Account (100K DAU, rank
249), Sony Xperia smartphone (10K DAU, rank 866), with MAU ranks 85, 213
and 1563.  Stats are retrieved through the Graph API, exactly as the
paper did.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.apps.catalog import mau_bucket
from repro.collusion.profiles import HTC_SENSE, NOKIA_ACCOUNT, SONY_XPERIA
from repro.experiments.formats import format_table, humanize_count
from repro.oauth.scopes import PermissionScope
from repro.oauth.server import AuthorizationRequest

#: The Table 3 applications, in the paper's row order.
TABLE3_APP_IDS = (HTC_SENSE, NOKIA_ACCOUNT, SONY_XPERIA)


@dataclass
class Table3Row:
    app_id: str
    name: str
    dau: int
    dau_rank: int
    mau: int
    mau_rank: int


@dataclass
class Table3Result:
    rows: List[Table3Row]

    def render(self) -> str:
        return format_table(
            ["Application Identifier", "Application Name", "DAU",
             "DAU Rank", "MAU", "MAU Rank"],
            [(r.app_id, r.name, humanize_count(mau_bucket(r.dau)),
              r.dau_rank, humanize_count(mau_bucket(r.mau)), r.mau_rank)
             for r in self.rows],
            title="Table 3: applications used by popular collusion networks",
        )


def _rank_of(world, app_id: str, key: str) -> int:
    """1-based rank of ``app_id`` among all registered apps by ``key``."""
    values = sorted((getattr(app, key) for app in world.apps), reverse=True)
    target = getattr(world.apps.get(app_id), key)
    return values.index(target) + 1


def run(world) -> Table3Result:
    """Fetch each exploited app's usage stats through the Graph API."""
    # The stats call needs any valid token; mint one via the implicit
    # flow of the first app, as a client would.
    probe_account = world.platform.register_account(
        "Table3 Probe", is_honeypot=True)
    first_app = world.apps.get(TABLE3_APP_IDS[0])
    auth = world.auth_server.authorize(
        AuthorizationRequest(
            app_id=first_app.app_id,
            redirect_uri=first_app.redirect_uri,
            response_type="token",
            scope=PermissionScope.basic(),
        ),
        probe_account.account_id,
    )
    token = auth.token_from_fragment()
    rows: List[Table3Row] = []
    for app_id in TABLE3_APP_IDS:
        stats = world.api.get_app_stats(token, app_id).data
        rows.append(Table3Row(
            app_id=app_id,
            name=stats["name"],
            dau=stats["daily_active_users"],
            dau_rank=_rank_of(world, app_id, "daily_active_users"),
            mau=stats["monthly_active_users"],
            mau_rank=_rank_of(world, app_id, "monthly_active_users"),
        ))
    return Table3Result(rows=rows)
