"""Table 2 — popular collusion networks by traffic rank.

Paper result: 50 sites, top 8 within the global top 100K, traffic
dominated by India (plus Turkey, Vietnam, Egypt for a few sites).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.collusion.profiles import unique_table2_sites
from repro.experiments.formats import format_table


@dataclass
class Table2Result:
    """(domain, rank, top country, top-country share) rows, rank order."""

    rows: List[Tuple[str, int, Optional[str], Optional[float]]]

    def render(self) -> str:
        display = []
        for domain, rank, country, share in self.rows:
            display.append((
                domain,
                f"{round(rank / 1000)}K",
                country or "-",
                f"{share * 100:.0f}%" if share is not None else "-",
            ))
        return format_table(
            ["Collusion Network", "Alexa Rank", "Top Country",
             "Top Country Visitors"],
            display,
            title="Table 2: popular collusion networks",
        )

    def rank_of(self, domain: str) -> int:
        for row_domain, rank, _, _ in self.rows:
            if row_domain == domain:
                return rank
        raise KeyError(domain)


def run(world) -> Table2Result:
    """Rank every seeded collusion site from measured traffic."""
    known = {site.domain for site in unique_table2_sites()}
    rows: List[Tuple[str, int, Optional[str], Optional[float]]] = []
    for entry in world.traffic_ranker.ranking():
        if entry.domain not in known:
            continue
        rows.append((entry.domain, entry.rank, entry.top_country,
                     entry.top_country_share))
    return Table2Result(rows=rows)
