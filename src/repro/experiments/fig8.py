"""Figure 8 — source IPs and ASes behind collusion-network likes.

Paper result: official-liker.net funnels the vast majority of its likes
through a handful of IP addresses (the per-IP limit kills it), while
hublaa.me spreads across >6,000 addresses that all resolve to two
bulletproof-hosting ASes (only AS blocking works).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Set

from repro.countermeasures.campaign import CampaignResults
from repro.countermeasures.iplimits import SourceStats
from repro.sim.clock import DAY


@dataclass
class SourceBreakdown:
    domain: str
    per_ip: List[SourceStats]
    per_as: List[SourceStats]

    @property
    def distinct_ips(self) -> int:
        return len(self.per_ip)

    @property
    def distinct_asns(self) -> int:
        return len(self.per_as)

    def top_ip_share(self, top_n: int = 3) -> float:
        """Share of likes carried by the ``top_n`` busiest IPs."""
        total = sum(s.total_likes for s in self.per_ip)
        if not total:
            return 0.0
        top = sum(s.total_likes for s in self.per_ip[:top_n])
        return top / total


@dataclass
class Fig8Result:
    breakdowns: Dict[str, SourceBreakdown]

    def render(self) -> str:
        lines = ["Figure 8: like-request sources per collusion network"]
        for domain, b in self.breakdowns.items():
            lines.append(
                f"  {domain}: {b.distinct_ips:,} IPs across "
                f"{b.distinct_asns} ASes; top-3 IPs carry "
                f"{b.top_ip_share() * 100:.0f}% of likes")
        return "\n".join(lines)


def run(world, results: CampaignResults) -> Fig8Result:
    """Aggregate like-request sources per focal network.

    Attribution matches the paper's: the source IPs of Graph API
    requests that liked *our honeypots' posts*.
    """
    post_owner: Dict[str, str] = {}
    for domain, honeypot in results.honeypots.items():
        for post_id in honeypot.like_post_ids:
            post_owner[post_id] = domain

    ips: Dict[str, Dict[str, Set[int]]] = defaultdict(
        lambda: defaultdict(set))
    ip_likes: Dict[str, Dict[str, int]] = defaultdict(
        lambda: defaultdict(int))
    timestamps, targets, sources = world.api.log.like_columns(
        ("timestamp", "target_id", "source_ip"))
    for timestamp, target_id, source_ip in zip(timestamps, targets,
                                               sources):
        domain = post_owner.get(target_id or "")
        if domain is None or source_ip is None:
            continue
        day = timestamp // DAY
        ips[domain][source_ip].add(day)
        ip_likes[domain][source_ip] += 1

    breakdowns: Dict[str, SourceBreakdown] = {}
    for domain in results.honeypots:
        per_ip = [
            SourceStats(ip, len(ips[domain][ip]), ip_likes[domain][ip])
            for ip in sorted(ip_likes[domain],
                             key=lambda i: -ip_likes[domain][i])
        ]
        as_days: Dict[int, Set[int]] = defaultdict(set)
        as_likes: Dict[int, int] = defaultdict(int)
        for stat in per_ip:
            asn = world.as_registry.asn_of(stat.source)
            if asn is None:
                continue
            as_days[asn].update(ips[domain][stat.source])
            as_likes[asn] += stat.total_likes
        per_as = [
            SourceStats(f"AS{asn}", len(as_days[asn]), as_likes[asn])
            for asn in sorted(as_likes, key=lambda a: -as_likes[a])
        ]
        breakdowns[domain] = SourceBreakdown(
            domain=domain, per_ip=per_ip, per_as=per_as)
    return Fig8Result(breakdowns=breakdowns)
