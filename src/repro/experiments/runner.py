"""End-to-end study runner: build the world, run every experiment."""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.apps.catalog import AppCatalog
from repro.collusion.ecosystem import CollusionEcosystem, build_ecosystem
from repro.core.config import StudyConfig
from repro.core.world import World
from repro.countermeasures.campaign import (
    CampaignConfig,
    CampaignResults,
    CountermeasureCampaign,
)
from repro.experiments import (
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
)
from repro.honeypot.milker import MilkingCampaign, MilkingResults
from repro.perf import StageTimer, paused_gc


@dataclass
class StudyArtifacts:
    """Everything a finished study produced, for further analysis."""

    config: StudyConfig
    world: World
    catalog: AppCatalog
    ecosystem: CollusionEcosystem
    milking: Optional[MilkingResults] = None
    campaign: Optional[CampaignResults] = None
    timings: Optional[StageTimer] = None


@dataclass
class StudyReport:
    """Typed results for every table and figure."""

    table1: Optional[table1.Table1Result] = None
    table2: Optional[table2.Table2Result] = None
    table3: Optional[table3.Table3Result] = None
    table4: Optional[table4.Table4Result] = None
    table5: Optional[table5.Table5Result] = None
    table6: Optional[table6.Table6Result] = None
    fig4: Optional[fig4.Fig4Result] = None
    fig5: Optional[fig5.Fig5Result] = None
    fig6: Optional[fig6.Fig6Result] = None
    fig7: Optional[fig7.Fig7Result] = None
    fig8: Optional[fig8.Fig8Result] = None

    def render(self) -> str:
        sections = []
        for result in (self.table1, self.table2, self.table3, self.table4,
                       self.table5, self.table6, self.fig4, self.fig5,
                       self.fig6, self.fig7, self.fig8):
            if result is not None:
                sections.append(result.render())
        return "\n\n".join(sections)


def build_world(config: Optional[StudyConfig] = None) -> StudyArtifacts:
    """Create and populate a world (catalog + collusion ecosystem)."""
    config = config or StudyConfig()
    with paused_gc():
        world = World(config)
        catalog = AppCatalog(world.apps, world.rng.stream("catalog"),
                             top_n=config.top_apps)
        catalog.build()
        ecosystem = build_ecosystem(world,
                                    network_limit=config.network_limit)
    return StudyArtifacts(config=config, world=world, catalog=catalog,
                          ecosystem=ecosystem)


def run_milking(artifacts: StudyArtifacts,
                days: Optional[int] = None) -> MilkingResults:
    """Run the §4 milking campaign over every built network."""
    campaign = MilkingCampaign(artifacts.world, artifacts.ecosystem)
    with paused_gc():
        artifacts.milking = campaign.run(
            days or artifacts.config.milking_days)
    return artifacts.milking


def run_campaign(artifacts: StudyArtifacts,
                 campaign_config: Optional[CampaignConfig] = None) -> CampaignResults:
    """Run the §6 countermeasure campaign (Fig. 5)."""
    if campaign_config is None:
        days = artifacts.config.campaign_days
        campaign_config = (CampaignConfig() if days == 75
                           else CampaignConfig.compressed(days))
    config = campaign_config
    available = set(artifacts.ecosystem.networks)
    networks = tuple(domain for domain in config.networks
                     if domain in available)
    if networks != config.networks:
        config = CampaignConfig(**{**config.__dict__,
                                   "networks": networks})
    runner = CountermeasureCampaign(artifacts.world, artifacts.ecosystem,
                                    config)
    with paused_gc():
        artifacts.campaign = runner.run()
    return artifacts.campaign


# ----------------------------------------------------------------------
# Experiment jobs.  Each is a pure function of the artifacts, which is
# what lets run_experiments fan them out across worker processes.
# ----------------------------------------------------------------------
def _exp_table1(a: StudyArtifacts):
    return table1.run(a.world, a.catalog)


def _exp_table2(a: StudyArtifacts):
    return table2.run(a.world)


def _exp_table3(a: StudyArtifacts):
    return table3.run(a.world)


def _exp_table5(a: StudyArtifacts):
    return table5.run(a.world, a.ecosystem)


def _exp_table4(a: StudyArtifacts):
    return table4.run(a.milking, a.config.scale)


def _exp_table6(a: StudyArtifacts):
    return table6.run(a.milking)


def _exp_fig4(a: StudyArtifacts):
    networks = [d for d in fig4.DEFAULT_NETWORKS
                if d in a.milking.per_network]
    if not networks:
        return None
    return fig4.run(a.milking, networks)


def _exp_fig5(a: StudyArtifacts):
    return fig5.run(a.campaign)


def _exp_fig6(a: StudyArtifacts):
    return fig6.run(a.world, a.campaign, ecosystem=a.ecosystem)


def _exp_fig7(a: StudyArtifacts):
    return fig7.run(a.world, a.campaign)


def _exp_fig8(a: StudyArtifacts):
    return fig8.run(a.world, a.campaign)


_EXPERIMENT_RUNNERS: Dict[str, Callable[[StudyArtifacts], Any]] = {
    "table1": _exp_table1,
    "table2": _exp_table2,
    "table3": _exp_table3,
    "table5": _exp_table5,
    "table4": _exp_table4,
    "table6": _exp_table6,
    "fig4": _exp_fig4,
    "fig5": _exp_fig5,
    "fig6": _exp_fig6,
    "fig7": _exp_fig7,
    "fig8": _exp_fig8,
}

#: Artifacts handed to forked experiment workers.  Fork shares the
#: parent's memory copy-on-write, so workers read the world without
#: pickling it; only the (small) result objects travel back.
_PARALLEL_STATE: Dict[str, StudyArtifacts] = {}


def _planned_experiments(artifacts: StudyArtifacts) -> List[str]:
    names = ["table1", "table2", "table3", "table5"]
    if artifacts.milking is not None:
        names += ["table4", "table6", "fig4"]
    if artifacts.campaign is not None:
        names += ["fig5", "fig6", "fig7", "fig8"]
    return names


def _run_planned(name: str) -> Tuple[str, Any]:
    return name, _EXPERIMENT_RUNNERS[name](_PARALLEL_STATE["artifacts"])


def _run_experiments_parallel(
        artifacts: StudyArtifacts, names: List[str],
        max_workers: Optional[int]) -> Optional[List[Tuple[str, Any]]]:
    """Fan experiments out over forked workers; None if unavailable."""
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return None
    workers = max_workers or min(len(names), os.cpu_count() or 1)
    _PARALLEL_STATE["artifacts"] = artifacts
    try:
        with ProcessPoolExecutor(max_workers=workers,
                                 mp_context=context) as pool:
            return list(pool.map(_run_planned, names))
    except Exception:  # pragma: no cover - fall back to serial
        return None
    finally:
        _PARALLEL_STATE.clear()


def run_experiments(artifacts: StudyArtifacts, parallel: bool = False,
                    max_workers: Optional[int] = None) -> StudyReport:
    """Produce every table/figure that the available artifacts allow.

    With ``parallel=True`` the experiment jobs run across forked worker
    processes (each job is a pure function of the artifacts, so the
    report is identical to a serial run); serial execution is the
    default and the fallback wherever fork is unavailable.
    """
    names = _planned_experiments(artifacts)
    results: Optional[List[Tuple[str, Any]]] = None
    if parallel and len(names) > 1:
        results = _run_experiments_parallel(artifacts, names, max_workers)
    if results is None:
        results = [(name, _EXPERIMENT_RUNNERS[name](artifacts))
                   for name in names]
    report = StudyReport()
    for name, result in results:
        setattr(report, name, result)
    return report


def run_full_study(config: Optional[StudyConfig] = None,
                   campaign_config: Optional[CampaignConfig] = None,
                   timer: Optional[StageTimer] = None,
                   parallel_experiments: bool = False):
    """Build, milk, counter, and report.  Returns (artifacts, report).

    Stage timings and per-stage API-request counts accumulate into
    ``timer`` (also stored as ``artifacts.timings``).
    """
    timer = timer if timer is not None else StageTimer()
    with timer.stage("build"):
        artifacts = build_world(config)
    artifacts.timings = timer
    log = artifacts.world.api.log
    timer.count("build.log_rows", len(log.all()))
    with timer.stage("milking"):
        run_milking(artifacts)
    milked_rows = len(log.all())
    timer.count("milking.log_rows",
                milked_rows - timer.counters.get("build.log_rows", 0))
    with timer.stage("campaign"):
        run_campaign(artifacts, campaign_config)
    timer.count("campaign.log_rows", len(log.all()) - milked_rows)
    with timer.stage("experiments"):
        report = run_experiments(artifacts,
                                 parallel=parallel_experiments)
    timer.count("experiments.log_rows", len(log.all()))
    return artifacts, report
