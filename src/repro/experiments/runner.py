"""End-to-end study runner: build the world, run every experiment."""

from __future__ import annotations

import multiprocessing
import os
import pickle
import traceback
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.apps.catalog import AppCatalog
from repro.collusion.ecosystem import CollusionEcosystem, build_ecosystem
from repro.core.config import StudyConfig
from repro.core.world import World
from repro.countermeasures.campaign import (
    CampaignConfig,
    CampaignResults,
    CountermeasureCampaign,
)
from repro.experiments import (
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
)
from repro.experiments.checkpoint import MISSING, CheckpointStore
from repro.honeypot.milker import MilkingCampaign, MilkingResults
from repro.perf import StageTimer, paused_gc
from repro.telemetry.tracing import TRACER


@dataclass
class StudyArtifacts:
    """Everything a finished study produced, for further analysis."""

    config: StudyConfig
    world: World
    catalog: AppCatalog
    ecosystem: CollusionEcosystem
    milking: Optional[MilkingResults] = None
    campaign: Optional[CampaignResults] = None
    timings: Optional[StageTimer] = None


@dataclass
class StudyReport:
    """Typed results for every table and figure."""

    table1: Optional[table1.Table1Result] = None
    table2: Optional[table2.Table2Result] = None
    table3: Optional[table3.Table3Result] = None
    table4: Optional[table4.Table4Result] = None
    table5: Optional[table5.Table5Result] = None
    table6: Optional[table6.Table6Result] = None
    fig4: Optional[fig4.Fig4Result] = None
    fig5: Optional[fig5.Fig5Result] = None
    fig6: Optional[fig6.Fig6Result] = None
    fig7: Optional[fig7.Fig7Result] = None
    fig8: Optional[fig8.Fig8Result] = None

    def render(self) -> str:
        sections = []
        for result in (self.table1, self.table2, self.table3, self.table4,
                       self.table5, self.table6, self.fig4, self.fig5,
                       self.fig6, self.fig7, self.fig8):
            if result is not None:
                sections.append(result.render())
        return "\n\n".join(sections)


def build_world(config: Optional[StudyConfig] = None) -> StudyArtifacts:
    """Create and populate a world (catalog + collusion ecosystem)."""
    config = config or StudyConfig()
    with paused_gc():
        world = World(config)
        catalog = AppCatalog(world.apps, world.rng.stream("catalog"),
                             top_n=config.top_apps)
        catalog.build()
        ecosystem = build_ecosystem(world,
                                    network_limit=config.network_limit)
    return StudyArtifacts(config=config, world=world, catalog=catalog,
                          ecosystem=ecosystem)


def run_milking(artifacts: StudyArtifacts,
                days: Optional[int] = None) -> MilkingResults:
    """Run the §4 milking campaign over every built network."""
    campaign = MilkingCampaign(artifacts.world, artifacts.ecosystem)
    with paused_gc():
        artifacts.milking = campaign.run(
            days or artifacts.config.milking_days)
    return artifacts.milking


def run_campaign(artifacts: StudyArtifacts,
                 campaign_config: Optional[CampaignConfig] = None,
                 recovery=None) -> CampaignResults:
    """Run the §6 countermeasure campaign (Fig. 5).

    ``recovery`` is an optional
    :class:`~repro.countermeasures.recovery.CampaignRecovery`: the
    campaign's request log is then journaled day by day and, when the
    journal directory already holds a compatible run, execution resumes
    from the last checkpointed day instead of day 1.
    """
    if campaign_config is None:
        days = artifacts.config.campaign_days
        campaign_config = (CampaignConfig() if days == 75
                           else CampaignConfig.compressed(days))
    config = campaign_config
    available = set(artifacts.ecosystem.networks)
    networks = tuple(domain for domain in config.networks
                     if domain in available)
    if networks != config.networks:
        config = CampaignConfig(**{**config.__dict__,
                                   "networks": networks})
    runner = CountermeasureCampaign(artifacts.world, artifacts.ecosystem,
                                    config)
    with paused_gc():
        artifacts.campaign = runner.run(recovery=recovery)
    return artifacts.campaign


# ----------------------------------------------------------------------
# Experiment jobs.  Each is a pure function of the artifacts, which is
# what lets run_experiments fan them out across worker processes.
# ----------------------------------------------------------------------
def _exp_table1(a: StudyArtifacts):
    return table1.run(a.world, a.catalog)


def _exp_table2(a: StudyArtifacts):
    return table2.run(a.world)


def _exp_table3(a: StudyArtifacts):
    return table3.run(a.world)


def _exp_table5(a: StudyArtifacts):
    return table5.run(a.world, a.ecosystem)


def _exp_table4(a: StudyArtifacts):
    return table4.run(a.milking, a.config.scale)


def _exp_table6(a: StudyArtifacts):
    return table6.run(a.milking)


def _exp_fig4(a: StudyArtifacts):
    networks = [d for d in fig4.DEFAULT_NETWORKS
                if d in a.milking.per_network]
    if not networks:
        return None
    return fig4.run(a.milking, networks)


def _exp_fig5(a: StudyArtifacts):
    return fig5.run(a.campaign)


def _exp_fig6(a: StudyArtifacts):
    return fig6.run(a.world, a.campaign, ecosystem=a.ecosystem)


def _exp_fig7(a: StudyArtifacts):
    return fig7.run(a.world, a.campaign)


def _exp_fig8(a: StudyArtifacts):
    return fig8.run(a.world, a.campaign)


_EXPERIMENT_RUNNERS: Dict[str, Callable[[StudyArtifacts], Any]] = {
    "table1": _exp_table1,
    "table2": _exp_table2,
    "table3": _exp_table3,
    "table5": _exp_table5,
    "table4": _exp_table4,
    "table6": _exp_table6,
    "fig4": _exp_fig4,
    "fig5": _exp_fig5,
    "fig6": _exp_fig6,
    "fig7": _exp_fig7,
    "fig8": _exp_fig8,
}

#: Artifacts handed to forked experiment workers.  Fork shares the
#: parent's memory copy-on-write, so workers read the world without
#: pickling it; only the (small) result objects travel back.
_PARALLEL_STATE: Dict[str, StudyArtifacts] = {}


class ExperimentWorkerError(RuntimeError):
    """Raised (as ``__cause__``) when an experiment worker fails.

    Carries the worker's formatted traceback so the parent process can
    show *where* in the experiment code the failure happened, not just
    that a subprocess died.
    """

    def __init__(self, experiment: str, worker_traceback: str) -> None:
        super().__init__(
            f"experiment worker {experiment!r} failed; "
            f"worker traceback:\n{worker_traceback}")
        self.experiment = experiment
        self.worker_traceback = worker_traceback


class _WorkerFailure:
    """Picklable snapshot of an exception raised inside a worker."""

    def __init__(self, name: str, exc: BaseException) -> None:
        self.name = name
        self.formatted = "".join(traceback.format_exception(
            type(exc), exc, exc.__traceback__))
        # Exceptions are usually picklable; when one is not (custom
        # __init__ signatures, unpicklable payloads) we still carry the
        # formatted traceback home, annotated with *why* the original
        # object could not travel.
        try:
            pickle.loads(pickle.dumps(exc))
        except Exception as error:
            self.exc: Optional[BaseException] = None
            self.formatted += (
                f"\n(original exception object not picklable: {error!r};"
                " re-raising ExperimentWorkerError instead)")
        else:
            self.exc = exc

    def reraise(self) -> None:
        """Re-raise the original exception chained to a parent-side
        :class:`ExperimentWorkerError` holding the worker traceback."""
        cause = ExperimentWorkerError(self.name, self.formatted)
        if self.exc is not None:
            raise self.exc from cause
        raise cause


def _planned_experiments(artifacts: StudyArtifacts) -> List[str]:
    names = ["table1", "table2", "table3", "table5"]
    if artifacts.milking is not None:
        names += ["table4", "table6", "fig4"]
    if artifacts.campaign is not None:
        names += ["fig5", "fig6", "fig7", "fig8"]
    return names


def _run_planned(name: str) -> Tuple[str, Any]:
    try:
        return name, _EXPERIMENT_RUNNERS[name](_PARALLEL_STATE["artifacts"])
    except Exception as exc:
        return name, _WorkerFailure(name, exc)


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Forcefully tear down a pool whose worker hung or died."""
    for process in list(getattr(pool, "_processes", {}).values()):
        try:
            process.terminate()
        except (OSError, ValueError):  # pragma: no cover - racy exit
            pass
    pool.shutdown(wait=False, cancel_futures=True)


def _run_experiments_parallel(
        artifacts: StudyArtifacts, names: List[str],
        max_workers: Optional[int],
        job_timeout: Optional[float] = None,
) -> Optional[Tuple[List[Tuple[str, Any]], List[str]]]:
    """Fan experiments out over forked workers.

    Returns ``(finished, leftover)`` — results actually collected and
    names that still need a (serial) run because a worker hung past
    ``job_timeout`` or died — or ``None`` when fork is unavailable.
    Worker exceptions are *collected*, not raised: they come back as
    ``(name, _WorkerFailure)`` entries for the caller to re-raise.
    """
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return None
    workers = max_workers or min(len(names), os.cpu_count() or 1)
    _PARALLEL_STATE["artifacts"] = artifacts
    finished: List[Tuple[str, Any]] = []
    try:
        pool = ProcessPoolExecutor(max_workers=workers, mp_context=context)
    except (OSError, ValueError, RuntimeError) as error:  # pragma: no cover
        warnings.warn(f"experiment worker pool unavailable ({error!r}); "
                      "running experiments serially", RuntimeWarning,
                      stacklevel=2)
        _PARALLEL_STATE.clear()
        return None
    try:
        futures = [(name, pool.submit(_run_planned, name))
                   for name in names]
        for index, (name, future) in enumerate(futures):
            try:
                finished.append(future.result(timeout=job_timeout))
            except Exception as error:
                # A hung worker (timeout) or a dead one (BrokenProcessPool
                # after a kill -9 / crash): tear the pool down, salvage
                # any sibling results that did complete, and hand the
                # rest back for a serial re-run.
                warnings.warn(
                    f"experiment worker for {name!r} lost ({error!r}); "
                    "salvaging finished jobs and re-running the rest "
                    "serially", RuntimeWarning, stacklevel=2)
                _kill_pool(pool)
                for later_name, later in futures[index + 1:]:
                    if later.done() and not later.cancelled():
                        try:
                            finished.append(later.result(timeout=0))
                        except Exception as torn:
                            warnings.warn(
                                f"discarding torn result for "
                                f"{later_name!r} ({torn!r}); it will "
                                "re-run serially", RuntimeWarning,
                                stacklevel=2)
                collected = {n for n, _ in finished}
                return finished, [n for n in names if n not in collected]
        pool.shutdown()
        return finished, []
    finally:
        _PARALLEL_STATE.clear()


def run_experiments(artifacts: StudyArtifacts, parallel: bool = False,
                    max_workers: Optional[int] = None,
                    checkpoint: Optional[CheckpointStore] = None,
                    job_timeout: Optional[float] = None) -> StudyReport:
    """Produce every table/figure that the available artifacts allow.

    With ``parallel=True`` the experiment jobs run across forked worker
    processes (each job is a pure function of the artifacts, so the
    report is identical to a serial run); serial execution is the
    default and the fallback wherever fork is unavailable.

    A worker that *fails* re-raises its original exception in the parent
    with the worker traceback attached as ``__cause__``.  A worker that
    *hangs* past ``job_timeout`` seconds (or is killed) gets its pool
    torn down and its jobs re-run serially.  With a ``checkpoint``
    store, each finished job's result is persisted immediately and
    already-checkpointed jobs are loaded instead of re-run (the
    ``--resume`` path).
    """
    names = _planned_experiments(artifacts)
    done: Dict[str, Any] = {}
    if checkpoint is not None:
        checkpoint.write_manifest()
        for name in names:
            stored = checkpoint.load(name)
            if stored is not MISSING:
                done[name] = stored
    todo = [name for name in names if name not in done]

    def record(name: str, result: Any) -> None:
        if isinstance(result, _WorkerFailure):
            result.reraise()
        done[name] = result
        if checkpoint is not None:
            checkpoint.save(name, result)

    if parallel and len(todo) > 1:
        outcome = _run_experiments_parallel(artifacts, todo, max_workers,
                                            job_timeout)
        if outcome is not None:
            finished, leftover = outcome
            for name, result in finished:
                record(name, result)
            todo = leftover
    for name in todo:
        record(name, _EXPERIMENT_RUNNERS[name](artifacts))
    report = StudyReport()
    for name in names:
        setattr(report, name, done[name])
    return report


def _record_resilience_counters(artifacts: StudyArtifacts,
                                timer: StageTimer) -> None:
    """Fold fault-injection and retry tallies into the stage timer.

    Recorded only on fault-plan runs so fault-free timer dumps stay
    identical to the pre-fault pipeline's.
    """
    faults = artifacts.world.faults
    if faults is None:
        return
    timer.count_many(faults.counters, prefix="faults.")
    totals: Dict[str, int] = {}
    policies = [network.retry_policy
                for network in artifacts.ecosystem.networks.values()]
    for policy in policies:
        for name, value in policy.counters.items():
            totals[name] = totals.get(name, 0) + value
    if artifacts.milking is not None:
        for name, value in artifacts.milking.retry_counters.items():
            totals[name] = totals.get(name, 0) + value
    timer.count_many(totals, prefix="retries.")


def run_full_study(config: Optional[StudyConfig] = None,
                   campaign_config: Optional[CampaignConfig] = None,
                   timer: Optional[StageTimer] = None,
                   parallel_experiments: bool = False,
                   checkpoint: Optional[CheckpointStore] = None,
                   job_timeout: Optional[float] = None,
                   campaign_recovery=None):
    """Build, milk, counter, and report.  Returns (artifacts, report).

    Stage timings and per-stage API-request counts accumulate into
    ``timer`` (also stored as ``artifacts.timings``); on fault-plan runs
    the injected-fault and retry tallies land there too.  ``checkpoint``
    / ``job_timeout`` flow through to :func:`run_experiments` for
    crash-tolerant experiment execution, ``campaign_recovery`` to
    :func:`run_campaign` for WAL journaling + day-granularity resume.
    """
    timer = timer if timer is not None else StageTimer()
    with timer.stage("build"):
        artifacts = build_world(config)
    artifacts.timings = timer
    if TRACER.enabled:
        # Give spans the sim clock so traces carry both time axes.
        TRACER.bind_clock(artifacts.world.clock)
    log = artifacts.world.api.log
    faults = artifacts.world.faults
    timer.count("build.log_rows", len(log.all()))
    with timer.stage("milking"):
        run_milking(artifacts)
    milked_rows = len(log.all())
    timer.count("milking.log_rows",
                milked_rows - timer.counters.get("build.log_rows", 0))
    milked_faults = faults.total_injected() if faults is not None else 0
    if faults is not None:
        timer.count("milking.faults_injected", milked_faults)
    with timer.stage("campaign"):
        run_campaign(artifacts, campaign_config,
                     recovery=campaign_recovery)
    timer.count("campaign.log_rows", len(log.all()) - milked_rows)
    if faults is not None:
        timer.count("campaign.faults_injected",
                    faults.total_injected() - milked_faults)
    with timer.stage("experiments"):
        report = run_experiments(artifacts,
                                 parallel=parallel_experiments,
                                 checkpoint=checkpoint,
                                 job_timeout=job_timeout)
    timer.count("experiments.log_rows", len(log.all()))
    _record_resilience_counters(artifacts, timer)
    return artifacts, report
