"""End-to-end study runner: build the world, run every experiment."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.apps.catalog import AppCatalog
from repro.collusion.ecosystem import CollusionEcosystem, build_ecosystem
from repro.core.config import StudyConfig
from repro.core.world import World
from repro.countermeasures.campaign import (
    CampaignConfig,
    CampaignResults,
    CountermeasureCampaign,
)
from repro.experiments import (
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
)
from repro.honeypot.milker import MilkingCampaign, MilkingResults


@dataclass
class StudyArtifacts:
    """Everything a finished study produced, for further analysis."""

    config: StudyConfig
    world: World
    catalog: AppCatalog
    ecosystem: CollusionEcosystem
    milking: Optional[MilkingResults] = None
    campaign: Optional[CampaignResults] = None


@dataclass
class StudyReport:
    """Typed results for every table and figure."""

    table1: Optional[table1.Table1Result] = None
    table2: Optional[table2.Table2Result] = None
    table3: Optional[table3.Table3Result] = None
    table4: Optional[table4.Table4Result] = None
    table5: Optional[table5.Table5Result] = None
    table6: Optional[table6.Table6Result] = None
    fig4: Optional[fig4.Fig4Result] = None
    fig5: Optional[fig5.Fig5Result] = None
    fig6: Optional[fig6.Fig6Result] = None
    fig7: Optional[fig7.Fig7Result] = None
    fig8: Optional[fig8.Fig8Result] = None

    def render(self) -> str:
        sections = []
        for result in (self.table1, self.table2, self.table3, self.table4,
                       self.table5, self.table6, self.fig4, self.fig5,
                       self.fig6, self.fig7, self.fig8):
            if result is not None:
                sections.append(result.render())
        return "\n\n".join(sections)


def build_world(config: Optional[StudyConfig] = None) -> StudyArtifacts:
    """Create and populate a world (catalog + collusion ecosystem)."""
    config = config or StudyConfig()
    world = World(config)
    catalog = AppCatalog(world.apps, world.rng.stream("catalog"),
                         top_n=config.top_apps)
    catalog.build()
    ecosystem = build_ecosystem(world, network_limit=config.network_limit)
    return StudyArtifacts(config=config, world=world, catalog=catalog,
                          ecosystem=ecosystem)


def run_milking(artifacts: StudyArtifacts,
                days: Optional[int] = None) -> MilkingResults:
    """Run the §4 milking campaign over every built network."""
    campaign = MilkingCampaign(artifacts.world, artifacts.ecosystem)
    artifacts.milking = campaign.run(days or artifacts.config.milking_days)
    return artifacts.milking


def run_campaign(artifacts: StudyArtifacts,
                 campaign_config: Optional[CampaignConfig] = None) -> CampaignResults:
    """Run the §6 countermeasure campaign (Fig. 5)."""
    if campaign_config is None:
        days = artifacts.config.campaign_days
        campaign_config = (CampaignConfig() if days == 75
                           else CampaignConfig.compressed(days))
    config = campaign_config
    available = set(artifacts.ecosystem.networks)
    networks = tuple(domain for domain in config.networks
                     if domain in available)
    if networks != config.networks:
        config = CampaignConfig(**{**config.__dict__,
                                   "networks": networks})
    runner = CountermeasureCampaign(artifacts.world, artifacts.ecosystem,
                                    config)
    artifacts.campaign = runner.run()
    return artifacts.campaign


def run_experiments(artifacts: StudyArtifacts) -> StudyReport:
    """Produce every table/figure that the available artifacts allow."""
    report = StudyReport()
    world = artifacts.world
    report.table1 = table1.run(world, artifacts.catalog)
    report.table2 = table2.run(world)
    report.table3 = table3.run(world)
    report.table5 = table5.run(world, artifacts.ecosystem)
    if artifacts.milking is not None:
        scale = artifacts.config.scale
        report.table4 = table4.run(artifacts.milking, scale)
        report.table6 = table6.run(artifacts.milking)
        fig4_networks = [d for d in fig4.DEFAULT_NETWORKS
                         if d in artifacts.milking.per_network]
        if fig4_networks:
            report.fig4 = fig4.run(artifacts.milking, fig4_networks)
    if artifacts.campaign is not None:
        report.fig5 = fig5.run(artifacts.campaign)
        report.fig6 = fig6.run(world, artifacts.campaign,
                              ecosystem=artifacts.ecosystem)
        report.fig7 = fig7.run(world, artifacts.campaign)
        report.fig8 = fig8.run(world, artifacts.campaign)
    return report


def run_full_study(config: Optional[StudyConfig] = None,
                   campaign_config: Optional[CampaignConfig] = None):
    """Build, milk, counter, and report.  Returns (artifacts, report)."""
    artifacts = build_world(config)
    run_milking(artifacts)
    run_campaign(artifacts, campaign_config)
    report = run_experiments(artifacts)
    return artifacts, report
