"""Figure 5 — the countermeasure timeline.

Paper result (per network):

* token rate-limit reduction (day 12): official-liker.net dips below 200
  for about a week, then adapts and bounces back; hublaa.me unaffected;
* token invalidations (days 23/28/29+/36+): sharp dips with partial
  recovery from fresh/returning tokens; sustained suppression under daily
  invalidation but never a full stop;
* clustering (day 55+): no major impact;
* IP rate limits (day 46): official-liker.net stops working immediately;
* AS blocking (day 70): hublaa.me (large IP pool in two bulletproof ASes)
  finally ceases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.countermeasures.campaign import CampaignResults


@dataclass
class PhaseSummary:
    """Average likes/post within one campaign phase."""

    name: str
    start_day: int
    end_day: int
    avg_likes: float


@dataclass
class Fig5Result:
    series: Dict[str, List[float]]
    interventions: List[Tuple[int, str]]
    phases: Dict[str, List[PhaseSummary]]

    def render(self) -> str:
        lines = ["Figure 5: countermeasure campaign (avg likes/post/day)"]
        for domain, phases in self.phases.items():
            lines.append(f"  {domain}:")
            for phase in phases:
                lines.append(
                    f"    days {phase.start_day:>2}-{phase.end_day:<2} "
                    f"{phase.name:<28} {phase.avg_likes:7.1f}"
                )
        lines.append("  interventions:")
        for day, message in self.interventions:
            lines.append(f"    day {day}: {message}")
        return "\n".join(lines)

    def phase_avg(self, domain: str, phase_name: str) -> float:
        for phase in self.phases[domain]:
            if phase.name == phase_name:
                return phase.avg_likes
        raise KeyError(phase_name)


def _phases_for(config) -> List[Tuple[str, int, int]]:
    # Interventions fire at the END of their configured day, so each
    # phase covers the days on which the intervention was in force:
    # (previous intervention day, this intervention day].
    return [
        ("baseline", 1, config.rate_limit_day),
        ("reduced token rate limit", config.rate_limit_day + 1,
         config.invalidate_half_day),
        ("invalidate half once", config.invalidate_half_day + 1,
         config.invalidate_all_day),
        ("invalidate all once", config.invalidate_all_day + 1,
         config.daily_half_start_day),
        ("daily half invalidation", config.daily_half_start_day + 1,
         config.daily_all_start_day),
        ("daily full invalidation", config.daily_all_start_day + 1,
         config.ip_limit_day),
        ("IP rate limits", config.ip_limit_day + 1,
         config.as_block_day),
        ("AS blocking", config.as_block_day + 1, config.days),
    ]


def run(results: CampaignResults) -> Fig5Result:
    """Summarize the campaign series into the Fig. 5 phases."""
    config = results.config
    phases: Dict[str, List[PhaseSummary]] = {}
    series: Dict[str, List[float]] = {}
    for domain, daily in results.series.items():
        series[domain] = daily.avg_likes_per_post
        summaries = []
        for name, start, end in _phases_for(config):
            if start > end or start > config.days:
                continue
            end = min(end, config.days)
            summaries.append(PhaseSummary(
                name=name, start_day=start, end_day=end,
                avg_likes=daily.window_average(start, end)))
        phases[domain] = summaries
    return Fig5Result(series=series, interventions=results.interventions,
                      phases=phases)
