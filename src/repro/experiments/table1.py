"""Table 1 — susceptible top-100 applications with long-term tokens.

Paper result: scanning the top 100 apps finds 55 susceptible, of which 46
receive short-term and 9 long-term tokens; the 9 long-term ones (headed by
Spotify at 50M MAU) are listed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.apps.catalog import AppCatalog, mau_bucket
from repro.apps.scanner import AppScanner
from repro.experiments.formats import format_table, humanize_count
from repro.oauth.tokens import TokenLifetime


@dataclass
class Table1Result:
    """Scan summary plus the long-term susceptible app rows."""

    scanned: int
    susceptible: int
    susceptible_short_term: int
    susceptible_long_term: int
    rows: List[Tuple[str, str, int]]  # (app id, name, MAU)

    def render(self) -> str:
        header = (
            f"Scanned {self.scanned} top applications: "
            f"{self.susceptible} susceptible "
            f"({self.susceptible_short_term} short-term, "
            f"{self.susceptible_long_term} long-term tokens)\n"
        )
        table = format_table(
            ["Application Identifier", "Application Name", "MAU"],
            [(app_id, name, humanize_count(mau_bucket(mau)))
             for app_id, name, mau in self.rows],
            title="Table 1: susceptible applications with long-term tokens",
        )
        return header + table


def run(world, catalog: AppCatalog) -> Table1Result:
    """Scan the top-100 catalog end to end and tabulate the result."""
    scanner = AppScanner(world.platform, world.auth_server, world.api)
    reports = scanner.scan_all(catalog.top_100())
    summary = AppScanner.summarize(reports)
    long_term = [r for r in reports
                 if r.susceptible
                 and r.token_lifetime is TokenLifetime.LONG_TERM]
    long_term.sort(key=lambda r: (-r.monthly_active_users, r.app_name))
    return Table1Result(
        scanned=summary["scanned"],
        susceptible=summary["susceptible"],
        susceptible_short_term=summary["susceptible_short_term"],
        susceptible_long_term=summary["susceptible_long_term"],
        rows=[(r.app_id, r.app_name, r.monthly_active_users)
              for r in long_term],
    )
