"""Figure 7 — hourly likes performed *by* the honeypot accounts.

Paper result: collusion networks spread each token's outgoing liking
activity over time — the honeypots' hourly like counts hover between
roughly 5 and 10, with no bursts — which is what defeats temporal
clustering (§6.3).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List

from repro.countermeasures.campaign import CampaignResults
from repro.sim.clock import HOUR


@dataclass
class HourlyOutgoing:
    domain: str
    #: average likes per hour-of-day (24 entries)
    hourly_average: List[float]
    total_actions: int

    @property
    def peak(self) -> float:
        return max(self.hourly_average) if self.hourly_average else 0.0

    @property
    def mean(self) -> float:
        if not self.hourly_average:
            return 0.0
        return sum(self.hourly_average) / len(self.hourly_average)


@dataclass
class Fig7Result:
    series: Dict[str, HourlyOutgoing]

    def render(self) -> str:
        lines = ["Figure 7: hourly likes performed by honeypot accounts"]
        for domain, s in self.series.items():
            lines.append(
                f"  {domain}: mean {s.mean:.1f}/h, peak {s.peak:.1f}/h, "
                f"total {s.total_actions:,} outgoing likes")
        return "\n".join(lines)


def run(world, results: CampaignResults,
        max_campaign_day: int = None) -> Fig7Result:
    """Bucket each honeypot's outgoing likes by hour of day.

    By default the window ends when the reduced token rate limit kicks
    in (``config.rate_limit_day``): from that day the countermeasure
    itself caps the honeypot tokens' activity, which would measure the
    defense rather than the networks' spreading behaviour.
    """
    if max_campaign_day is None:
        max_campaign_day = results.config.rate_limit_day
    cutoff = (results.start_day + max_campaign_day) * 24 * HOUR
    series: Dict[str, HourlyOutgoing] = {}
    for domain, honeypot in results.honeypots.items():
        records = world.platform.activity_log.for_actor(honeypot.account_id)
        by_hour: Dict[int, int] = defaultdict(int)
        days = set()
        total = 0
        for record in records:
            if record.verb != "like":
                continue
            if record.target_owner_id == honeypot.account_id:
                continue
            if record.created_at >= cutoff:
                continue
            hour_of_day = (record.created_at // HOUR) % 24
            by_hour[hour_of_day] += 1
            days.add(record.created_at // (24 * HOUR))
            total += 1
        n_days = max(1, len(days))
        series[domain] = HourlyOutgoing(
            domain=domain,
            hourly_average=[by_hour[h] / n_days for h in range(24)],
            total_actions=total,
        )
    return Fig7Result(series=series)
