"""Experiment reproductions: one module per table and figure.

Each module exposes a ``run(...)`` function taking the artifacts it needs
(world, catalog, milking results, campaign results) and returning a typed
result with a ``render()`` method that prints rows in the paper's layout.
"""

from repro.experiments import (
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
)
from repro.experiments.formats import format_table

__all__ = [
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "format_table",
]
