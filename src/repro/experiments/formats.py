"""Plain-text table rendering shared by the experiment modules."""

from __future__ import annotations

from typing import Any, List, Sequence


def _cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:,.1f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[Any]],
                 title: str = "") -> str:
    """Render an aligned text table (numbers right-aligned)."""
    cells: List[List[str]] = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, text in enumerate(row):
            widths[i] = max(widths[i], len(text))

    def render_row(values: Sequence[str], source_row=None) -> str:
        parts = []
        for i, text in enumerate(values):
            raw = source_row[i] if source_row is not None else None
            if isinstance(raw, (int, float)) and not isinstance(raw, bool):
                parts.append(text.rjust(widths[i]))
            else:
                parts.append(text.ljust(widths[i]))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for source, row in zip(rows, cells):
        lines.append(render_row(row, source))
    return "\n".join(lines)


def humanize_count(value: int) -> str:
    """Facebook-style coarse counts: 50M, 1M, 100K, 10K...

    Values that would round to 1000.0K promote to the next unit.
    """
    if value >= 999_500:
        scaled = value / 1_000_000
        if round(scaled, 1) == int(scaled):
            return f"{scaled:.0f}M"
        return f"{scaled:.1f}M"
    if value >= 1_000:
        scaled = value / 1_000
        if round(scaled, 1) == int(scaled):
            return f"{scaled:.0f}K"
        return f"{scaled:.1f}K"
    return str(value)
