"""Table 5 — short URLs used by collusion networks.

Paper result: 13 goo.gl links; the oldest (June 2014) has ~148M clicks;
several links share the HTC Sense login-dialog long URL whose combined
clicks total 236M; referrers identify the collusion network sites.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.collusion.ecosystem import CollusionEcosystem
from repro.experiments.formats import format_table
from repro.shorturl.analytics import ShortUrlAnalytics, ShortUrlReport


@dataclass
class Table5Row:
    label: str  # the paper's goo.gl name for readability
    report: ShortUrlReport
    app_name: str


@dataclass
class Table5Result:
    rows: List[Table5Row]

    def render(self) -> str:
        return format_table(
            ["Short URL", "Date Created", "Short URL Clicks",
             "Long URL Clicks", "Application", "Top Referrer"],
            [(r.label, r.report.created_date, r.report.short_url_clicks,
              r.report.long_url_clicks, r.app_name,
              r.report.top_referrer or "Unknown")
             for r in self.rows],
            title="Table 5: short URLs used by collusion networks",
        )

    def total_long_url_clicks(self) -> int:
        """Sum of clicks across distinct long URLs (the paper's >289M)."""
        seen = {}
        for row in self.rows:
            seen[row.report.long_url] = row.report.long_url_clicks
        return sum(seen.values())


def run(world, ecosystem: CollusionEcosystem) -> Table5Result:
    """Pull public analytics for each Table 5 short URL."""
    from repro.collusion.profiles import SHORT_URL_SEEDS

    analytics = ShortUrlAnalytics(world.shortener)
    app_by_label = {seed.label: world.apps.get(seed.app_id).name
                    for seed in SHORT_URL_SEEDS}
    rows = [
        Table5Row(label=label, report=analytics.report(slug),
                  app_name=app_by_label[label])
        for label, slug in ecosystem.table5_slugs
    ]
    rows.sort(key=lambda r: -r.report.short_url_clicks)
    return Table5Result(rows=rows)
