"""Figure 6 — how many honeypot posts each colluding account liked.

Paper result: collusion networks rotate account subsets, so most accounts
like very few of the honeypot's posts — 76% of hublaa.me's and 30% of
official-liker.net's accounts like at most one post.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict

from repro.countermeasures.campaign import CampaignResults

#: Histogram buckets: 1..9 posts, then "10 or more".
MAX_BUCKET = 10


@dataclass
class PostsLikedHistogram:
    domain: str
    #: bucket (1..MAX_BUCKET) -> fraction of accounts
    shares: Dict[int, float]
    accounts: int

    def share_at_most(self, posts: int) -> float:
        return sum(share for bucket, share in self.shares.items()
                   if bucket <= posts)


@dataclass
class Fig6Result:
    histograms: Dict[str, PostsLikedHistogram]

    def render(self) -> str:
        lines = ["Figure 6: number of honeypot posts liked per account"]
        for domain, hist in self.histograms.items():
            buckets = " ".join(
                f"{b}:{hist.shares.get(b, 0.0) * 100:.0f}%"
                for b in range(1, MAX_BUCKET + 1))
            lines.append(f"  {domain} ({hist.accounts:,} accounts): "
                         f"{buckets}")
            lines.append(f"    accounts liking at most one post: "
                         f"{hist.share_at_most(1) * 100:.0f}%")
        return "\n".join(lines)


def run(world, results: CampaignResults, ecosystem=None,
        max_draw_ratio: float = 0.75) -> Fig6Result:
    """Histogram per-account post-like counts over campaign honeypots.

    The paper's histogram reflects its sampling depth: the campaign drew
    fewer likes than the token pool held, so most accounts appeared at
    most once.  At reduced simulation scale the same number of posts
    oversamples the (scaled-down) pool, so when ``ecosystem`` is given
    the histogram uses the post prefix whose cumulative likes stay below
    ``max_draw_ratio`` x pool — the paper's sampling regime.
    """
    histograms: Dict[str, PostsLikedHistogram] = {}
    shared_budget = None
    if ecosystem is not None:
        # One sampling depth for every network, anchored on the largest
        # pool: the paper milked all networks at a similar request rate,
        # so smaller-pool networks are naturally oversampled (that is
        # what separates official-liker.net's histogram from
        # hublaa.me's).
        pools = [ecosystem.network(d).profile.pool_size(world.config.scale)
                 for d in results.honeypots]
        shared_budget = int(max(pools) * max_draw_ratio)
    for domain, honeypot in results.honeypots.items():
        draw_budget = shared_budget
        counts: Counter = Counter()
        drawn = 0
        for post_id in honeypot.like_post_ids:
            post = world.platform.get_post(post_id)
            likers = post.liker_ids()
            if draw_budget is not None and drawn and (
                    drawn + len(likers) > draw_budget):
                break
            drawn += len(likers)
            for liker in likers:
                counts[liker] += 1
        total = len(counts)
        buckets: Counter = Counter()
        for liked in counts.values():
            buckets[min(liked, MAX_BUCKET)] += 1
        shares = {bucket: buckets[bucket] / total if total else 0.0
                  for bucket in range(1, MAX_BUCKET + 1)}
        histograms[domain] = PostsLikedHistogram(
            domain=domain, shares=shares, accounts=total)
    return Fig6Result(histograms=histograms)
