"""Table 6 — lexical analysis of collusion-network comments.

Paper result: across the 7 auto-comment networks, only 187 of 12,959
comments are unique; lexical richness stays under ~9%, ARI ranges 13-25
and ~20% of words are not in an English dictionary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.experiments.formats import format_table
from repro.honeypot.milker import MilkingResults
from repro.lexical.analysis import CommentCorpusAnalysis, analyze_comments


@dataclass
class Table6Result:
    per_network: Dict[str, CommentCorpusAnalysis]
    overall: CommentCorpusAnalysis

    def render(self) -> str:
        def row(domain: str, a: CommentCorpusAnalysis):
            return (domain, a.posts, round(a.avg_comments_per_post),
                    a.comments, a.unique_comments,
                    f"{a.unique_comment_pct:.1f}", a.words, a.unique_words,
                    f"{a.lexical_richness_pct:.1f}", f"{a.ari:.1f}",
                    f"{a.non_dictionary_pct:.1f}")

        rows = [row(domain, analysis)
                for domain, analysis in sorted(self.per_network.items())]
        rows.append(row("All", self.overall))
        return format_table(
            ["Collusion Network", "Posts", "Avg/Post", "Comments",
             "Unique", "Unique %", "Words", "Uniq Words", "Lex Rich %",
             "ARI", "Non-dict %"],
            rows,
            title="Table 6: lexical analysis of comments",
        )


def run(results: MilkingResults) -> Table6Result:
    """Analyze every auto-comment network's crawled comments."""
    per_network: Dict[str, CommentCorpusAnalysis] = {}
    all_comments: List[str] = []
    all_posts = 0
    for domain, r in results.per_network.items():
        if not r.comment_posts:
            continue
        per_network[domain] = analyze_comments(r.comments_received,
                                               r.comment_posts)
        all_comments.extend(r.comments_received)
        all_posts += r.comment_posts
    overall = analyze_comments(all_comments, all_posts)
    return Table6Result(per_network=per_network, overall=overall)
