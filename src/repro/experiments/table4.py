"""Table 4 — per-network milking statistics.

Paper result: 11,751 posts, 2,753,153 likes across 22 networks; membership
sizes from 294,949 (hublaa.me) down to 834 (fast-liker.com); 1,150,782
memberships, 1,008,021 unique accounts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.experiments.formats import format_table
from repro.honeypot.milker import MilkingResults


@dataclass
class Table4Row:
    domain: str
    posts_submitted: int
    likes: int
    avg_likes_per_post: float
    outgoing_activities: int
    outgoing_target_accounts: int
    outgoing_target_pages: int
    membership_size: int


@dataclass
class Table4Result:
    rows: List[Table4Row]
    total_posts: int
    total_likes: int
    total_memberships: int
    unique_accounts: int
    scale: float

    def render(self) -> str:
        body = [(r.domain, r.posts_submitted, r.likes,
                 round(r.avg_likes_per_post), r.outgoing_activities,
                 r.outgoing_target_accounts, r.outgoing_target_pages,
                 r.membership_size)
                for r in self.rows]
        body.append(("All", self.total_posts, self.total_likes,
                     round(self.total_likes / self.total_posts)
                     if self.total_posts else 0,
                     sum(r.outgoing_activities for r in self.rows),
                     sum(r.outgoing_target_accounts for r in self.rows),
                     sum(r.outgoing_target_pages for r in self.rows),
                     self.total_memberships))
        table = format_table(
            ["Collusion Network", "Posts", "Likes", "Avg Likes/Post",
             "Out Activities", "Target Accounts", "Target Pages",
             "Membership"],
            body,
            title=(f"Table 4: milking statistics "
                   f"(scale={self.scale:g}; multiply counts by "
                   f"{1 / self.scale:.0f} for paper scale)"),
        )
        footer = (f"\nUnique accounts across all networks: "
                  f"{self.unique_accounts:,} "
                  f"(memberships: {self.total_memberships:,})")
        return table + footer

    def row_for(self, domain: str) -> Table4Row:
        for row in self.rows:
            if row.domain == domain:
                return row
        raise KeyError(domain)


def run(results: MilkingResults, scale: float) -> Table4Result:
    """Tabulate a finished milking campaign."""
    rows: List[Table4Row] = []
    for domain, r in results.per_network.items():
        outgoing = r.outgoing
        rows.append(Table4Row(
            domain=domain,
            posts_submitted=r.posts_submitted,
            likes=r.likes_received,
            avg_likes_per_post=r.avg_likes_per_post,
            outgoing_activities=outgoing.activities if outgoing else 0,
            outgoing_target_accounts=(outgoing.target_accounts
                                      if outgoing else 0),
            outgoing_target_pages=outgoing.target_pages if outgoing else 0,
            membership_size=r.membership_estimate,
        ))
    rows.sort(key=lambda r: -r.membership_size)
    return Table4Result(
        rows=rows,
        total_posts=results.total_posts(),
        total_likes=results.total_likes(),
        total_memberships=results.total_memberships(),
        unique_accounts=results.unique_accounts(),
        scale=scale,
    )
